//! Sparse abstract interpretation over the gated SSA: the pre-SMT triage
//! layer.
//!
//! §3.2.3/Alg. 6 of the paper wins by running propagation-style
//! preprocessing (constants, equalities, unconstrained-ness) on the modular
//! graph *before* any call-site cloning. This module generalizes the
//! [`crate::quickpath`] Const/Affine return summaries to a full product
//! domain computed for **every definition**, memoized **once per function**
//! (never per call site):
//!
//! ```text
//! Const(c)  ⊑  Affine(param)  ⊑  Interval × KnownBits  ⊑  ⊤
//! ```
//!
//! Because the core IR is pure and total and every function body is acyclic
//! SSA (loops and recursion are unrolled before analysis), each fact is an
//! *unconditional* consequence of the definitions alone — valid in every
//! calling context and on every path. Memoizing them per function is
//! therefore the same §3.2.3 discipline the quick paths already follow and
//! is **not** §3.2.2 condition caching: no path condition is ever computed,
//! stored, or implied by a fact.
//!
//! The facts feed three layers of the pipeline:
//!
//! 1. **candidate triage** — [`ProgramFacts::path_refuted`] evaluates a
//!    dependence path's gating constraints (Rules 1/5) and, for the null
//!    checker, its sink value against the facts; a refuted constraint
//!    short-circuits the whole query to infeasible with zero solver work.
//!    Triage may only *refute*, never claim feasibility, so reports are
//!    byte-identical to the untriaged pipeline;
//! 2. **solver seeding** — the per-definition known-bits facts are handed
//!    to formula preprocessing so bit-level refutations fire on first
//!    contact instead of being rediscovered per instantiation;
//! 3. **unification** — [`crate::quickpath::ret_summaries`] is the
//!    Const/Affine projection of this domain ([`ProgramFacts::ret_summaries`]),
//!    so there is exactly one value-propagation engine.

use crate::checkers::CheckKind;
use crate::quickpath::RetSummary;
use fusion_ir::ssa::{DefKind, FuncId, Op, Program, VarId};
use fusion_pdg::paths::DependencePath;
use fusion_pdg::slice::{constraints_for, Constraint, ConstraintKind};

const SIGN_BIT: u32 = 0x8000_0000;

/// The low `n` bits set (`n >= 32` gives all ones).
fn mask(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// All bits at or above the leading bit of `h` cleared; i.e. the largest
/// value with no bit above `h`'s most significant set bit.
fn ones_fill(h: u32) -> u32 {
    if h == 0 {
        0
    } else {
        mask(32 - h.leading_zeros())
    }
}

/// An abstract value: the reduced product of three component domains.
///
/// * `shape` — the symbolic Const/Affine summary of [`crate::quickpath`]
///   (with [`RetSummary::Opaque`] as its top);
/// * `lo..=hi` — an unsigned interval (`lo <= hi` always holds);
/// * `known`/`value` — known bits: every concrete value `v` this abstract
///   value describes satisfies `v & known == value`.
///
/// The product is *reduced*: information flows between components (a
/// singleton interval makes every bit known; fully known bits collapse the
/// interval; a common high prefix of `lo`/`hi` becomes known bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Symbolic Const/Affine component (in terms of the containing
    /// function's parameters).
    pub shape: RetSummary,
    /// Unsigned interval lower bound (inclusive).
    pub lo: u32,
    /// Unsigned interval upper bound (inclusive).
    pub hi: u32,
    /// Bit mask of positions whose value is known.
    pub known: u32,
    /// The values of the known bits (`value & known == value`).
    pub value: u32,
}

impl AbsVal {
    /// The top element: no information.
    pub fn top() -> AbsVal {
        AbsVal {
            shape: RetSummary::Opaque,
            lo: 0,
            hi: u32::MAX,
            known: 0,
            value: 0,
        }
    }

    /// The singleton abstract value for the constant `c`.
    pub fn constant(c: u32) -> AbsVal {
        AbsVal {
            shape: RetSummary::Const(c),
            lo: c,
            hi: c,
            known: u32::MAX,
            value: c,
        }
    }

    /// The abstract value of parameter `index`: symbolically the identity
    /// affine form, otherwise unconstrained.
    pub fn param(index: usize) -> AbsVal {
        AbsVal {
            shape: RetSummary::Affine {
                index,
                mul: 1,
                add: 0,
            },
            lo: 0,
            hi: u32::MAX,
            known: 0,
            value: 0,
        }
    }

    /// `Some(c)` when the interval (hence the whole product) pins a single
    /// concrete value.
    pub fn as_const(&self) -> Option<u32> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Every concrete value this fact describes is zero.
    pub fn provably_zero(&self) -> bool {
        self.hi == 0
    }

    /// Every concrete value this fact describes is nonzero.
    pub fn provably_nonzero(&self) -> bool {
        self.lo > 0 || (self.known & self.value) != 0
    }

    /// Whether the interval and known-bits components admit `v` — the
    /// soundness predicate the property tests check against the concrete
    /// evaluator.
    pub fn contains(&self, v: u32) -> bool {
        self.lo <= v && v <= self.hi && (v & self.known) == self.value
    }

    /// Whether the shape component is consistent with concrete value `v`
    /// under the containing function's arguments `args` (missing arguments
    /// default to 0, matching the evaluator).
    pub fn shape_matches(&self, v: u32, args: &[u32]) -> bool {
        match self.shape {
            RetSummary::Const(c) => v == c,
            RetSummary::Affine { index, mul, add } => {
                let x = args.get(index).copied().unwrap_or(0);
                v == mul.wrapping_mul(x).wrapping_add(add)
            }
            RetSummary::Opaque => true,
        }
    }

    /// The join (least upper bound) of two facts: shapes must agree to
    /// survive, intervals take the hull, bits keep the agreeing positions.
    pub fn join(self, o: AbsVal) -> AbsVal {
        let shape = if self.shape == o.shape && self.shape != RetSummary::Opaque {
            self.shape
        } else {
            RetSummary::Opaque
        };
        let agree = self.known & o.known & !(self.value ^ o.value);
        AbsVal {
            shape,
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            known: agree,
            value: self.value & agree,
        }
        .reduced()
    }

    /// Re-establishes the reduced-product invariants: bits sharpen the
    /// interval, a singleton interval makes all bits known, and the common
    /// high prefix of the bounds becomes known bits.
    pub fn reduced(mut self) -> AbsVal {
        self.value &= self.known;
        // Bits → interval: known bits bound the reachable values.
        let bmin = self.value;
        let bmax = self.value | !self.known;
        self.lo = self.lo.max(bmin);
        self.hi = self.hi.min(bmax);
        if self.lo > self.hi {
            // Only reachable on unsound inputs; fall back to the
            // bits-derived interval, which is always well-formed.
            self.lo = bmin;
            self.hi = bmax;
        }
        // Interval → bits.
        if self.lo == self.hi {
            self.known = u32::MAX;
            self.value = self.lo;
        } else {
            let diff = self.lo ^ self.hi;
            let prefix = !(u32::MAX >> diff.leading_zeros());
            self.known |= prefix;
            self.value = (self.value & !prefix) | (self.lo & prefix);
        }
        self
    }
}

/// Number of low bits of the fact that are fully known (the `low_run` of
/// formula preprocessing).
fn low_run(v: &AbsVal) -> u32 {
    (!v.known).trailing_zeros()
}

/// Number of low bits known to be zero.
fn low_zeros(v: &AbsVal) -> u32 {
    (!(v.known & !v.value)).trailing_zeros()
}

/// Signed bounds, when the unsigned interval stays within one sign class.
fn signed_bounds(v: &AbsVal) -> Option<(i32, i32)> {
    if v.hi < SIGN_BIT || v.lo >= SIGN_BIT {
        Some((v.lo as i32, v.hi as i32))
    } else {
        None
    }
}

/// Decides a predicate operator from the operand facts, if possible.
fn decide_predicate(op: Op, a: &AbsVal, b: &AbsVal) -> Option<bool> {
    let bit_conflict = (a.value ^ b.value) & a.known & b.known != 0;
    match op {
        Op::Ult => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        Op::Ule => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        Op::Slt => {
            let (alo, ahi) = signed_bounds(a)?;
            let (blo, bhi) = signed_bounds(b)?;
            if ahi < blo {
                Some(true)
            } else if alo >= bhi {
                Some(false)
            } else {
                None
            }
        }
        Op::Sle => {
            let (alo, ahi) = signed_bounds(a)?;
            let (blo, bhi) = signed_bounds(b)?;
            if ahi <= blo {
                Some(true)
            } else if alo > bhi {
                Some(false)
            } else {
                None
            }
        }
        Op::Eq => {
            if a.hi < b.lo || b.hi < a.lo || bit_conflict {
                Some(false)
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(true)
            } else {
                None
            }
        }
        Op::Ne => {
            if a.hi < b.lo || b.hi < a.lo || bit_conflict {
                Some(true)
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                Some(false)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Interval transfer for a non-predicate binary operator.
fn interval_binary(op: Op, a: &AbsVal, b: &AbsVal) -> (u32, u32) {
    const TOP: (u32, u32) = (0, u32::MAX);
    const WRAP: u64 = 1 << 32;
    match op {
        Op::Add => {
            let ls = a.lo as u64 + b.lo as u64;
            let hs = a.hi as u64 + b.hi as u64;
            if hs < WRAP {
                (ls as u32, hs as u32)
            } else if ls >= WRAP {
                ((ls - WRAP) as u32, (hs - WRAP) as u32)
            } else {
                TOP
            }
        }
        Op::Sub => {
            if a.lo >= b.hi {
                (a.lo - b.hi, a.hi - b.lo)
            } else if a.hi < b.lo {
                // The difference is always negative: both bounds wrap.
                (a.lo.wrapping_sub(b.hi), a.hi.wrapping_sub(b.lo))
            } else {
                TOP
            }
        }
        Op::Mul => {
            if (a.hi as u64) * (b.hi as u64) < WRAP {
                (a.lo * b.lo, a.hi * b.hi)
            } else {
                TOP
            }
        }
        Op::Udiv => {
            // Both divisions succeed exactly when b.lo > 0 (which implies
            // b.hi >= b.lo > 0 for a well-formed interval).
            if let (Some(lo), Some(hi)) = (a.lo.checked_div(b.hi), a.hi.checked_div(b.lo)) {
                (lo, hi)
            } else if b.hi == 0 {
                (u32::MAX, u32::MAX) // x / 0 = 2^32 - 1
            } else {
                TOP
            }
        }
        Op::Urem => {
            if b.hi == 0 {
                (a.lo, a.hi) // x % 0 = x
            } else if b.lo > 0 {
                (0, a.hi.min(b.hi - 1))
            } else {
                (0, a.hi.max(b.hi - 1))
            }
        }
        Op::And => (0, a.hi.min(b.hi)),
        Op::Or => (a.lo.max(b.lo), ones_fill(a.hi | b.hi)),
        Op::Xor => (0, ones_fill(a.hi | b.hi)),
        Op::Shl => match b.as_const() {
            Some(k) if k >= 32 => (0, 0),
            Some(k) if ((a.hi as u64) << k) < WRAP => (a.lo << k, a.hi << k),
            _ => TOP,
        },
        Op::Lshr => match b.as_const() {
            Some(k) if k >= 32 => (0, 0),
            Some(k) => (a.lo >> k, a.hi >> k),
            None => (0, a.hi),
        },
        Op::Ashr => match b.as_const() {
            Some(k) if k >= 32 => {
                if a.hi < SIGN_BIT {
                    (0, 0)
                } else if a.lo >= SIGN_BIT {
                    (u32::MAX, u32::MAX)
                } else {
                    TOP
                }
            }
            Some(k) if a.hi < SIGN_BIT => (a.lo >> k, a.hi >> k),
            Some(k) if a.lo >= SIGN_BIT => {
                (((a.lo as i32) >> k) as u32, ((a.hi as i32) >> k) as u32)
            }
            _ => TOP,
        },
        // Predicates are handled by `decide_predicate`.
        _ => (0, 1),
    }
}

/// Known-bits transfer for a non-predicate binary operator (mirrors the
/// transfer functions of `fusion-smt`'s formula preprocessing, plus a
/// trailing-zeros refinement for `Mul`).
fn bits_binary(op: Op, a: &AbsVal, b: &AbsVal) -> (u32, u32) {
    const NONE: (u32, u32) = (0, 0);
    match op {
        Op::And => {
            let known0 = (a.known & !a.value) | (b.known & !b.value);
            let known1 = (a.known & a.value) & (b.known & b.value);
            (known0 | known1, known1)
        }
        Op::Or => {
            let known1 = (a.known & a.value) | (b.known & b.value);
            let known0 = (a.known & !a.value) & (b.known & !b.value);
            (known0 | known1, known1)
        }
        Op::Xor => {
            let known = a.known & b.known;
            (known, (a.value ^ b.value) & known)
        }
        Op::Add | Op::Sub => {
            let j = low_run(a).min(low_run(b));
            let m = mask(j);
            let v = match op {
                Op::Add => a.value.wrapping_add(b.value),
                _ => a.value.wrapping_sub(b.value),
            };
            (m, v & m)
        }
        Op::Mul => {
            // Low bits of the product are exact where both inputs are fully
            // known; additionally the product has at least as many trailing
            // zeros as its factors combined (the evenness of `2 * x` that
            // low-run alone misses).
            let j = low_run(a).min(low_run(b));
            let tz = (low_zeros(a) + low_zeros(b)).min(32);
            (mask(j) | mask(tz), a.value.wrapping_mul(b.value) & mask(j))
        }
        Op::Shl => match b.as_const() {
            Some(k) if k >= 32 => (u32::MAX, 0),
            Some(k) => (((a.known << k) | mask(k)), a.value << k),
            None => NONE,
        },
        Op::Lshr => match b.as_const() {
            Some(k) if k >= 32 => (u32::MAX, 0),
            Some(k) => ((a.known >> k) | !(u32::MAX >> k), a.value >> k),
            None => NONE,
        },
        _ => NONE,
    }
}

/// Shape transfer: exactly the Const/Affine algebra of the historical
/// quick-path propagation, so the [`RetSummary`] projection of the domain
/// reproduces it.
fn combine_shapes(op: Op, a: RetSummary, b: RetSummary) -> RetSummary {
    use RetSummary::*;
    match (op, a, b) {
        (_, Const(x), Const(y)) => Const(op.eval(x, y)),
        (Op::Add, Affine { index, mul, add }, Const(c))
        | (Op::Add, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul,
            add: add.wrapping_add(c),
        },
        (Op::Sub, Affine { index, mul, add }, Const(c)) => Affine {
            index,
            mul,
            add: add.wrapping_sub(c),
        },
        (Op::Sub, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul: 0u32.wrapping_sub(mul),
            add: c.wrapping_sub(add),
        },
        (Op::Mul, Affine { index, mul, add }, Const(c))
        | (Op::Mul, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul: mul.wrapping_mul(c),
            add: add.wrapping_mul(c),
        },
        (Op::Shl, Affine { index, mul, add }, Const(c)) if c < 32 => Affine {
            index,
            mul: mul.wrapping_shl(c),
            add: add.wrapping_shl(c),
        },
        _ => Opaque,
    }
}

/// Full binary transfer over the product domain.
fn binary(op: Op, a: AbsVal, b: AbsVal) -> AbsVal {
    let shape = combine_shapes(op, a.shape, b.shape);
    if let RetSummary::Const(c) = shape {
        return AbsVal::constant(c);
    }
    if op.is_predicate() {
        return match decide_predicate(op, &a, &b) {
            Some(t) => AbsVal::constant(t as u32),
            None => AbsVal {
                shape,
                lo: 0,
                hi: 1,
                known: !1u32,
                value: 0,
            }
            .reduced(),
        };
    }
    let (lo, hi) = interval_binary(op, &a, &b);
    let (known, value) = bits_binary(op, &a, &b);
    AbsVal {
        shape,
        lo,
        hi,
        known,
        value,
    }
    .reduced()
}

/// Composes a callee's return fact with the call's argument facts: the
/// interval/bits components transfer unchanged (they hold for *any*
/// arguments), the shape composes through the affine algebra.
fn call_compose(ret: AbsVal, args: &[VarId], vals: &[AbsVal]) -> AbsVal {
    let shape = match ret.shape {
        RetSummary::Const(c) => return AbsVal::constant(c),
        RetSummary::Affine { index, mul, add } => {
            match args.get(index).map(|a| vals[a.index()].shape) {
                Some(RetSummary::Const(c)) => {
                    return AbsVal::constant(mul.wrapping_mul(c).wrapping_add(add))
                }
                Some(RetSummary::Affine {
                    index: i,
                    mul: m,
                    add: a,
                }) => RetSummary::Affine {
                    index: i,
                    mul: mul.wrapping_mul(m),
                    add: mul.wrapping_mul(a).wrapping_add(add),
                },
                _ => RetSummary::Opaque,
            }
        }
        RetSummary::Opaque => RetSummary::Opaque,
    };
    AbsVal { shape, ..ret }.reduced()
}

struct Builder<'p> {
    program: &'p Program,
    funcs: Vec<Option<Vec<AbsVal>>>,
    rets: Vec<Option<AbsVal>>,
    visiting: Vec<bool>,
}

impl Builder<'_> {
    fn ret_fact(&mut self, fid: FuncId) -> AbsVal {
        if let Some(r) = self.rets[fid.index()] {
            return r;
        }
        if self.visiting[fid.index()] {
            // Break (should-be-impossible) call cycles conservatively, like
            // the historical quick-path memo.
            return AbsVal::top();
        }
        self.visiting[fid.index()] = true;
        let program = self.program;
        let func = program.func(fid);
        let (vals, ret) = if func.is_extern {
            (Vec::new(), AbsVal::top())
        } else {
            let mut vals: Vec<AbsVal> = Vec::with_capacity(func.defs.len());
            for def in &func.defs {
                let v = self.transfer(&def.kind, &vals);
                vals.push(v);
            }
            let ret = func
                .ret
                .map(|r| vals[r.index()])
                .unwrap_or_else(AbsVal::top);
            (vals, ret)
        };
        self.visiting[fid.index()] = false;
        self.funcs[fid.index()] = Some(vals);
        self.rets[fid.index()] = Some(ret);
        ret
    }

    fn transfer(&mut self, kind: &DefKind, vals: &[AbsVal]) -> AbsVal {
        match kind {
            DefKind::Param { index } => AbsVal::param(*index),
            DefKind::Const { value, .. } => AbsVal::constant(*value),
            DefKind::Copy { src } | DefKind::Return { src } => vals[src.index()],
            DefKind::Binary { op, lhs, rhs } => binary(*op, vals[lhs.index()], vals[rhs.index()]),
            DefKind::Ite {
                cond,
                then_v,
                else_v,
            } => {
                let c = vals[cond.index()];
                if c.provably_nonzero() {
                    vals[then_v.index()]
                } else if c.provably_zero() {
                    vals[else_v.index()]
                } else {
                    vals[then_v.index()].join(vals[else_v.index()])
                }
            }
            // A branch vertex carries its condition's value but never acts
            // as data, so its shape stays opaque (matching the quick-path
            // projection) while the value facts transfer.
            DefKind::Branch { cond } => {
                let mut v = vals[cond.index()];
                v.shape = RetSummary::Opaque;
                v
            }
            DefKind::Call { callee, args, .. } => {
                let ret = self.ret_fact(*callee);
                call_compose(ret, args, vals)
            }
        }
    }
}

/// The per-definition abstract facts of a whole program, memoized once per
/// function.
///
/// Facts are unconditional consequences of the acyclic SSA definitions
/// (parameters and external results are unconstrained), so they hold in
/// every calling context — caching them is *not* condition caching.
#[derive(Debug, Clone)]
pub struct ProgramFacts {
    num_functions: usize,
    program_size: usize,
    funcs: Vec<Vec<AbsVal>>,
    rets: Vec<AbsVal>,
}

impl ProgramFacts {
    /// Reassembles facts from snapshot sections ([`crate::snapshot`]).
    /// The caller supplies exactly the vectors `compute` would have
    /// produced for the same program; `matches` still guards staleness.
    pub(crate) fn from_parts(
        num_functions: usize,
        program_size: usize,
        funcs: Vec<Vec<AbsVal>>,
        rets: Vec<AbsVal>,
    ) -> ProgramFacts {
        ProgramFacts {
            num_functions,
            program_size,
            funcs,
            rets,
        }
    }

    /// Runs the abstract interpreter over every function, bottom-up over
    /// the (acyclic, post-unrolling) call graph.
    pub fn compute(program: &Program) -> ProgramFacts {
        let n = program.functions.len();
        let mut b = Builder {
            program,
            funcs: vec![None; n],
            rets: vec![None; n],
            visiting: vec![false; n],
        };
        for f in &program.functions {
            b.ret_fact(f.id);
        }
        ProgramFacts {
            num_functions: n,
            program_size: program.size(),
            funcs: b
                .funcs
                .into_iter()
                .map(|v| v.expect("all functions analyzed"))
                .collect(),
            rets: b
                .rets
                .into_iter()
                .map(|r| r.expect("all functions analyzed"))
                .collect(),
        }
    }

    /// Recomputes facts after an edit, reusing every clean function's
    /// memoized values.
    ///
    /// `dirty[i]` must be true for every function whose facts may have
    /// changed: the edited functions plus their transitive *callers*
    /// (return summaries flow bottom-up, so a callee edit can change a
    /// caller's facts, but never vice versa — facts are keyed by
    /// [`FuncId`], not content, so stale entries must be evicted rather
    /// than relied on to miss). Clean functions seed the builder and are
    /// returned unchanged; dirty ones are re-interpreted on demand.
    ///
    /// Returns the refreshed facts and the number of functions whose
    /// memoized facts were invalidated.
    pub fn recompute(
        program: &Program,
        prev: &ProgramFacts,
        dirty: &[bool],
    ) -> (ProgramFacts, u64) {
        let n = program.functions.len();
        assert_eq!(dirty.len(), n, "dirty mask must cover every function");
        assert_eq!(
            prev.num_functions, n,
            "recompute requires matching function count"
        );
        let mut invalidated = 0u64;
        let mut b = Builder {
            program,
            funcs: vec![None; n],
            rets: vec![None; n],
            visiting: vec![false; n],
        };
        for (i, is_dirty) in dirty.iter().enumerate() {
            if *is_dirty {
                invalidated += 1;
            } else {
                b.funcs[i] = Some(prev.funcs[i].clone());
                b.rets[i] = Some(prev.rets[i]);
            }
        }
        for f in &program.functions {
            b.ret_fact(f.id);
        }
        let facts = ProgramFacts {
            num_functions: n,
            program_size: program.size(),
            funcs: b
                .funcs
                .into_iter()
                .map(|v| v.expect("all functions analyzed"))
                .collect(),
            rets: b
                .rets
                .into_iter()
                .map(|r| r.expect("all functions analyzed"))
                .collect(),
        };
        (facts, invalidated)
    }

    /// Whether these facts were computed for a program of this identity
    /// (function count and total size) — the same staleness key the solver
    /// uses for its memoized summaries.
    pub fn matches(&self, program: &Program) -> bool {
        self.num_functions == program.functions.len() && self.program_size == program.size()
    }

    /// The fact for `var` in `func`.
    ///
    /// # Panics
    ///
    /// Panics when `func`/`var` are out of range for the analyzed program.
    pub fn value(&self, func: FuncId, var: VarId) -> AbsVal {
        self.funcs[func.index()][var.index()]
    }

    /// All facts of one function, indexed by [`VarId`].
    ///
    /// # Panics
    ///
    /// Panics when `func` is out of range for the analyzed program.
    pub fn function(&self, func: FuncId) -> &[AbsVal] {
        &self.funcs[func.index()]
    }

    /// The return-value fact of `func` (top for externs).
    ///
    /// # Panics
    ///
    /// Panics when `func` is out of range for the analyzed program.
    pub fn ret_fact(&self, func: FuncId) -> AbsVal {
        self.rets[func.index()]
    }

    /// The Const/Affine projection of the domain — the quick-path return
    /// summaries, now derived rather than recomputed.
    pub fn ret_summaries(&self) -> Vec<RetSummary> {
        self.rets.iter().map(|r| r.shape).collect()
    }

    /// Whether the facts refute a single gating constraint: the constraint
    /// demands a truth value the condition's fact excludes in *every*
    /// execution, so any query conjoining it is unsatisfiable.
    pub fn constraint_refuted(&self, program: &Program, c: &Constraint) -> bool {
        match c.kind {
            ConstraintKind::BranchTrue { branch } => {
                let DefKind::Branch { cond } = program.func(c.func).def(branch).kind else {
                    return false;
                };
                self.value(c.func, cond).provably_zero()
            }
            ConstraintKind::IteGate { ite, taken_then } => {
                let DefKind::Ite { cond, .. } = program.func(c.func).def(ite).kind else {
                    return false;
                };
                let f = self.value(c.func, cond);
                if taken_then {
                    f.provably_zero()
                } else {
                    f.provably_nonzero()
                }
            }
        }
    }

    /// Refute-only triage of one dependence path.
    ///
    /// Returns `true` only when the facts *prove* the path's feasibility
    /// query unsatisfiable: some gating constraint (Rule 1/5) demands a
    /// truth value its condition can never take, or — for the null
    /// checker — the dereferenced value is provably nonzero while the path
    /// would carry the null constant into it. Never claims feasibility.
    pub fn path_refuted(&self, program: &Program, path: &DependencePath, kind: CheckKind) -> bool {
        for c in constraints_for(program, std::slice::from_ref(path)) {
            if self.constraint_refuted(program, &c) {
                return true;
            }
        }
        // Null-deref sink check: the vertex feeding the sink call is the
        // dereferenced value; the null checker's propagation policy is
        // value-preserving (no arithmetic), so a feasible path forces that
        // value to 0 — impossible when its fact excludes 0.
        if kind == CheckKind::NullDeref && path.nodes.len() >= 2 {
            let v = path.nodes[path.nodes.len() - 2];
            if self.value(v.func, v.var).provably_nonzero() {
                return true;
            }
        }
        false
    }

    /// Approximate heap footprint of the memoized facts, for diagnostics.
    pub fn bytes(&self) -> usize {
        let per = std::mem::size_of::<AbsVal>();
        self.funcs.iter().map(|f| f.len() * per).sum::<usize>() + self.rets.len() * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    fn facts(src: &str) -> (Program, ProgramFacts) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let f = ProgramFacts::compute(&p);
        (p, f)
    }

    #[test]
    fn constants_are_exact() {
        let (p, f) = facts("fn f() { let a = 7; let b = a + 3; return b; }");
        let fid = p.func_by_name("f").unwrap().id;
        assert_eq!(f.ret_fact(fid), AbsVal::constant(10));
        assert_eq!(f.ret_summaries()[fid.index()], RetSummary::Const(10));
    }

    #[test]
    fn params_are_affine_but_unbounded() {
        let (p, f) = facts("fn f(x) { return x * 2 + 1; }");
        let fid = p.func_by_name("f").unwrap().id;
        let r = f.ret_fact(fid);
        assert_eq!(
            r.shape,
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 1
            }
        );
        // Bit reduction sharpens the lower bound: 2x + 1 is odd, so >= 1.
        assert_eq!((r.lo, r.hi), (1, u32::MAX));
        // 2x + 1 is odd: bit 0 is known one.
        assert_eq!(r.known & 1, 1);
        assert_eq!(r.value & 1, 1);
        assert!(r.provably_nonzero());
    }

    #[test]
    fn doubling_is_provably_even() {
        let (p, f) = facts("fn f(x) { let y = x * 2; return y; }");
        let y = f.ret_fact(p.func_by_name("f").unwrap().id);
        assert_eq!(y.known & 1, 1);
        assert_eq!(y.value & 1, 0);
    }

    #[test]
    fn masking_bounds_the_interval() {
        let (p, f) = facts("fn f(x) { let b = x & 7; return b; }");
        let fid = p.func_by_name("f").unwrap().id;
        let r = f.ret_fact(fid);
        assert_eq!((r.lo, r.hi), (0, 7));
        // Bits 3.. are known zero.
        assert_eq!(r.known, !7u32);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn predicates_decide_from_intervals() {
        let (p, f) = facts(
            "fn f(x) { let b = x & 1; let c = b < 2; return c; }\n\
             fn g(x) { let b = x & 1; let c = 2 < b; return c; }",
        );
        assert_eq!(f.ret_fact(p.func_by_name("f").unwrap().id).as_const(), {
            // b in [0,1], signed compare 0..1 < 2 always true.
            Some(1)
        });
        assert_eq!(
            f.ret_fact(p.func_by_name("g").unwrap().id).as_const(),
            Some(0)
        );
    }

    #[test]
    fn parity_contradiction_is_refuted() {
        let (p, f) = facts("fn f(x) { let y = x * 2; let c = y == 7; return c; }");
        let r = f.ret_fact(p.func_by_name("f").unwrap().id);
        assert_eq!(r.as_const(), Some(0));
        assert!(r.provably_zero());
    }

    #[test]
    fn ite_joins_and_selects() {
        let (p, f) = facts(
            "fn join(x) { let r = 3; if (x > 0) { r = 5; } return r; }\n\
             fn sel(x) { let r = 3; if (1 < 2) { r = 5; } return r; }",
        );
        let j = f.ret_fact(p.func_by_name("join").unwrap().id);
        assert_eq!((j.lo, j.hi), (3, 5));
        assert!(j.provably_nonzero());
        // A provably-true condition selects the then-arm exactly.
        let s = f.ret_fact(p.func_by_name("sel").unwrap().id);
        assert_eq!(s.as_const(), Some(5));
    }

    #[test]
    fn calls_transfer_interval_facts_and_compose_shapes() {
        let (p, f) = facts(
            "fn low(x) { let b = x & 3; return b; }\n\
             fn double(x) { return x * 2; }\n\
             fn use1(a) { let v = low(a); return v; }\n\
             fn use2(a) { let v = double(a) + 1; return v; }",
        );
        let u1 = f.ret_fact(p.func_by_name("use1").unwrap().id);
        assert_eq!((u1.lo, u1.hi), (0, 3));
        let u2 = f.ret_fact(p.func_by_name("use2").unwrap().id);
        assert_eq!(
            u2.shape,
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 1
            }
        );
        assert!(u2.provably_nonzero()); // odd
    }

    #[test]
    fn externs_are_top() {
        let (p, f) = facts("extern fn lib(x); fn f(x) { return lib(x); }");
        let fid = p.func_by_name("f").unwrap().id;
        assert_eq!(f.ret_fact(fid), AbsVal::top());
        assert_eq!(f.ret_summaries()[fid.index()], RetSummary::Opaque);
    }

    #[test]
    fn reduction_syncs_components() {
        let v = AbsVal {
            shape: RetSummary::Opaque,
            lo: 4,
            hi: 5,
            known: 0,
            value: 0,
        }
        .reduced();
        // Common prefix of 4 (100) and 5 (101) is known.
        assert_eq!(v.known, !1u32);
        assert_eq!(v.value, 4);
        assert!(v.provably_nonzero());
        let c = AbsVal {
            shape: RetSummary::Opaque,
            lo: 9,
            hi: 9,
            known: 0,
            value: 0,
        }
        .reduced();
        assert_eq!(c.known, u32::MAX);
        assert_eq!(c.value, 9);
    }

    #[test]
    fn division_semantics_match_the_ir() {
        // x / 0 = MAX, x % 0 = x.
        let (p, f) = facts("fn f(x) { let z = 0; let d = x / z; return d; }");
        let r = f.ret_fact(p.func_by_name("f").unwrap().id);
        assert_eq!(r.as_const(), Some(u32::MAX));
        let (p2, f2) = facts("fn f(x) { let z = 0; let d = x % z; let c = d == x; return c; }");
        // d == x is not decided (both Top), but must not be refuted.
        let r2 = f2.ret_fact(p2.func_by_name("f").unwrap().id);
        assert_eq!(r2.as_const(), None);
    }

    #[test]
    fn guard_refutation_on_a_real_path() {
        // The guard `y == 7` with y provably even can never hold; every
        // dependence path gated by it is refuted.
        let src = "extern fn deref(p);\n\
                   fn f(x) { let y = x * 2; let q = null; let r = 1;\n\
                   if (y == 7) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).unwrap();
        let f = ProgramFacts::compute(&p);
        let pdg = fusion_pdg::graph::Pdg::build(&p);
        let checker = crate::checkers::Checker::null_deref();
        let d = crate::propagate::discover(&p, &pdg, &checker, &Default::default());
        assert!(!d.is_empty());
        for cand in &d {
            for path in &cand.paths {
                assert!(f.path_refuted(&p, path, CheckKind::NullDeref));
            }
        }
    }

    #[test]
    fn feasible_paths_are_never_refuted() {
        let src = "extern fn deref(p);\n\
                   fn f(x) { let q = null; let r = 1;\n\
                   if (x > 0) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).unwrap();
        let f = ProgramFacts::compute(&p);
        let pdg = fusion_pdg::graph::Pdg::build(&p);
        let checker = crate::checkers::Checker::null_deref();
        let d = crate::propagate::discover(&p, &pdg, &checker, &Default::default());
        let any_unrefuted = d
            .iter()
            .flat_map(|c| c.paths.iter())
            .any(|path| !f.path_refuted(&p, path, CheckKind::NullDeref));
        assert!(any_unrefuted);
    }

    #[test]
    fn recompute_with_dirty_callers_matches_cold_compute() {
        let old_src = "fn callee(x) { let b = x & 3; return b; }\n\
                       fn caller(a) { let v = callee(a); return v + 1; }\n\
                       fn lone(y) { return y * 2; }";
        let new_src = "fn callee(x) { let b = x & 7; return b; }\n\
                       fn caller(a) { let v = callee(a); return v + 1; }\n\
                       fn lone(y) { return y * 2; }";
        let (old_p, old_f) = facts(old_src);
        let new_p = compile(new_src, CompileOptions::default()).unwrap();
        let cold = ProgramFacts::compute(&new_p);
        // callee edited ⇒ callee and its transitive caller are dirty;
        // `lone` keeps its memoized facts.
        let callee = old_p.func_by_name("callee").unwrap().id;
        let caller = old_p.func_by_name("caller").unwrap().id;
        let mut dirty = vec![false; old_p.functions.len()];
        dirty[callee.index()] = true;
        dirty[caller.index()] = true;
        let (warm, invalidated) = ProgramFacts::recompute(&new_p, &old_f, &dirty);
        assert_eq!(invalidated, 2);
        for f in &new_p.functions {
            assert_eq!(warm.function(f.id), cold.function(f.id));
            assert_eq!(warm.ret_fact(f.id), cold.ret_fact(f.id));
        }
        assert!(warm.matches(&new_p));
    }

    #[test]
    fn facts_match_program_identity() {
        let (p, f) = facts("fn f(x) { return x; }");
        assert!(f.matches(&p));
        let other = compile("fn g(x, y) { return x + y; }", CompileOptions::default()).unwrap();
        assert!(!f.matches(&other));
        assert!(f.bytes() > 0);
    }
}

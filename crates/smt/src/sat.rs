//! A CDCL SAT solver.
//!
//! The backend the bit-blasted conditions are handed to — the counterpart of
//! "Z3's SAT solver" in §4 of the paper. Classic MiniSat-style architecture:
//! two-watched-literal propagation, first-UIP conflict analysis with clause
//! learning, VSIDS branching with an activity heap, phase saving, Luby
//! restarts, and periodic learnt-clause database reduction. Budgets (conflict
//! count and wall-clock deadline) make every call interruptible — the
//! evaluation caps each solver call exactly like the paper's 10-second
//! per-query limit.

use crate::cnf::{BVar, Cnf, Lit};
use std::time::Instant;

/// Outcome of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable, with a full model (`model[v]` = value of `BVar(v)`).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted before a decision was reached.
    Unknown,
}

/// Resource budget for one SAT call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatBudget {
    /// Maximum number of conflicts (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Wall-clock deadline (`None` = unlimited).
    pub deadline: Option<Instant>,
}

/// Statistics of a SAT call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Decisions made.
    pub decisions: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

const UNDEF: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: usize,
    blocker: Lit,
}

/// The CDCL solver state. Construct with [`SatSolver::new`], run with
/// [`SatSolver::solve`].
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>, // indexed by Lit::code()
    assign: Vec<u8>,          // 0 = false, 1 = true, UNDEF
    level: Vec<u32>,
    reason: Vec<usize>, // usize::MAX = none
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<BVar>,        // binary max-heap on activity
    heap_index: Vec<usize>, // usize::MAX = not in heap
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    final_conflict: Vec<Lit>,
    /// Count of learnt clauses in `clauses`, maintained incrementally so
    /// the solve loop never scans the clause arena (a session solver's
    /// arena is large and long-lived).
    num_learnt: usize,
    /// Cumulative statistics across all solve calls on this solver.
    pub stats: SatStats,
}

impl SatSolver {
    /// Builds a solver over the given CNF.
    pub fn new(cnf: &Cnf) -> SatSolver {
        let n = cnf.num_vars as usize;
        let mut s = SatSolver {
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![UNDEF; n],
            level: vec![0; n],
            reason: vec![usize::MAX; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::with_capacity(n),
            heap_index: vec![usize::MAX; n],
            phase: vec![false; n],
            seen: vec![false; n],
            ok: true,
            final_conflict: Vec::new(),
            num_learnt: 0,
            stats: SatStats::default(),
        };
        for v in 0..cnf.num_vars {
            s.heap_insert(BVar(v));
        }
        for c in &cnf.clauses {
            s.add_clause(c.clone());
            if !s.ok {
                break;
            }
        }
        s
    }

    /// Builds an empty solver (zero variables, zero clauses) for incremental
    /// use: grow it with [`SatSolver::ensure_vars`] and
    /// [`SatSolver::add_clause_incremental`], query it with
    /// [`SatSolver::solve_under_assumptions`].
    pub fn empty() -> SatSolver {
        SatSolver::new(&Cnf::new())
    }

    /// Grows the variable universe to at least `n` variables. New variables
    /// start unassigned with zero activity and negative saved phase.
    pub fn ensure_vars(&mut self, n: usize) {
        if self.assign.len() >= n {
            return;
        }
        let old = self.assign.len();
        self.watches.resize_with(2 * n, Vec::new);
        self.assign.resize(n, UNDEF);
        self.level.resize(n, 0);
        self.reason.resize(n, usize::MAX);
        self.activity.resize(n, 0.0);
        self.phase.resize(n, false);
        self.seen.resize(n, false);
        self.heap_index.resize(n, usize::MAX);
        for v in old..n {
            self.heap_insert(BVar(v as u32));
        }
    }

    /// Number of variables currently known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of permanent (non-learnt) clauses in the database.
    pub fn permanent_clauses(&self) -> usize {
        self.clauses.len() - self.num_learnt
    }

    /// Number of learnt clauses currently retained.
    pub fn learnt_clauses(&self) -> usize {
        self.num_learnt
    }

    /// Whether the permanent clause database is still consistent. Once a
    /// clause set is unsatisfiable at level 0 the solver stays `false`.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adds a clause between solve calls (incremental interface). Backtracks
    /// to decision level 0 first, so this is safe to call at any point
    /// between [`SatSolver::solve_under_assumptions`] calls. Referencing a
    /// variable `v` requires a prior `ensure_vars(v + 1)`.
    pub fn add_clause_incremental(&mut self, lits: Vec<Lit>) {
        self.backtrack(0);
        self.add_clause(lits);
    }

    /// The subset of assumption literals responsible for the last
    /// assumption-failure `Unsat` answer from
    /// [`SatSolver::solve_under_assumptions`] (MiniSat's "final conflict").
    /// Empty when the last answer was not an assumption failure — in
    /// particular when the clause database itself is unsatisfiable.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.final_conflict
    }

    fn value(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNDEF {
            UNDEF
        } else if l.is_pos() {
            a
        } else {
            1 - a
        }
    }

    fn add_clause(&mut self, mut lits: Vec<Lit>) {
        if !self.ok {
            return;
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x
            }
        }
        // Remove false literals / satisfied clauses at level 0.
        lits.retain(|&l| self.value(l) != 0 || self.level[l.var().index()] != 0);
        if lits
            .iter()
            .any(|&l| self.value(l) == 1 && self.level[l.var().index()] == 0)
        {
            return;
        }
        match lits.len() {
            0 => self.ok = false,
            1 => {
                if !self.enqueue(lits[0], usize::MAX) || self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let ci = self.clauses.len();
                self.watch(lits[0], lits[1], ci);
                self.watch(lits[1], lits[0], ci);
                self.clauses.push(Clause {
                    lits,
                    learnt: false,
                    activity: 0.0,
                });
            }
        }
    }

    fn watch(&mut self, l: Lit, blocker: Lit, clause: usize) {
        self.watches[(!l).code()].push(Watch { clause, blocker });
    }

    fn enqueue(&mut self, l: Lit, reason: usize) -> bool {
        match self.value(l) {
            1 => true,
            0 => false,
            _ => {
                let v = l.var().index();
                self.assign[v] = l.is_pos() as u8;
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.phase[v] = l.is_pos();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let code = l.code();
            'watches: while i < self.watches[code].len() {
                let Watch { clause, blocker } = self.watches[code][i];
                if self.value(blocker) == 1 {
                    i += 1;
                    continue;
                }
                // Normalize: watched literal being falsified is ¬l; put it
                // in position 1.
                let false_lit = !l;
                {
                    let lits = &mut self.clauses[clause].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[clause].lits[0];
                if first != blocker && self.value(first) == 1 {
                    self.watches[code][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new watch.
                let len = self.clauses[clause].lits.len();
                for k in 2..len {
                    let lk = self.clauses[clause].lits[k];
                    if self.value(lk) != 0 {
                        self.clauses[clause].lits.swap(1, k);
                        self.watches[code].swap_remove(i);
                        self.watch(lk, first, clause);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                self.watches[code][i].blocker = first;
                if !self.enqueue(first, clause) {
                    self.qhead = self.trail.len();
                    return Some(clause);
                }
                i += 1;
            }
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn bump_var(&mut self, v: BVar) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_index[v.index()] != usize::MAX {
            self.heap_up(self.heap_index[v.index()]);
        }
    }

    fn bump_clause(&mut self, c: usize) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            // collect literals of the conflict/reason clause
            let lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("UIP");
                break;
            }
            confl = self.reason[pv.index()];
            debug_assert_ne!(confl, usize::MAX);
        }
        // Cheap clause minimization: drop literals implied by others'
        // reasons at level 0 handled implicitly; full minimization omitted.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Second-highest level among learnt literals; move it to slot 1.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var();
                self.assign[v.index()] = UNDEF;
                self.reason[v.index()] = usize::MAX;
                if self.heap_index[v.index()] == usize::MAX {
                    self.heap_insert(v);
                }
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(&top) = self.heap.first() {
            if self.assign[top.index()] == UNDEF {
                self.heap_remove_top();
                return Some(Lit::new(top, self.phase[top.index()]));
            }
            self.heap_remove_top();
        }
        None
    }

    fn reduce_db(&mut self) {
        // Remove the less active half of learnt clauses that are not
        // currently reasons.
        let mut learnt_idx: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt)
            .collect();
        if learnt_idx.len() < 100 {
            return;
        }
        learnt_idx.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: std::collections::HashSet<usize> = self
            .reason
            .iter()
            .copied()
            .filter(|&r| r != usize::MAX)
            .collect();
        let mut remove: std::collections::HashSet<usize> = learnt_idx[..learnt_idx.len() / 2]
            .iter()
            .copied()
            .filter(|i| !locked.contains(i) && self.clauses[*i].lits.len() > 2)
            .collect();
        if remove.is_empty() {
            return;
        }
        // Rebuild clause arena and watches with a remap.
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - remove.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if remove.contains(&i) {
                continue;
            }
            remap[i] = new_clauses.len();
            new_clauses.push(c);
        }
        self.clauses = new_clauses;
        self.num_learnt = self.clauses.iter().filter(|c| c.learnt).count();
        for w in &mut self.watches {
            w.retain(|watch| remap[watch.clause] != usize::MAX);
            for watch in w.iter_mut() {
                watch.clause = remap[watch.clause];
            }
        }
        for r in &mut self.reason {
            if *r != usize::MAX {
                *r = remap[*r];
                debug_assert_ne!(*r, usize::MAX, "removed a locked clause");
            }
        }
        remove.clear();
    }

    /// Runs the CDCL loop under the given budget.
    pub fn solve(&mut self, budget: SatBudget) -> SatOutcome {
        self.solve_under_assumptions(&[], budget)
    }

    /// MiniSat-style final-conflict analysis: given a falsified assumption
    /// literal `p`, walks the implication trail backwards to collect the
    /// subset of assumption literals whose conjunction is inconsistent with
    /// the clause database. Stores the result in `self.final_conflict`.
    fn analyze_final(&mut self, p: Lit) {
        self.final_conflict.clear();
        self.final_conflict.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == usize::MAX {
                // A decision inside the assumption prefix: one of the
                // assumptions that forced ¬p.
                debug_assert!(self.level[v] > 0);
                self.final_conflict.push(l);
            } else {
                for k in 0..self.clauses[r].lits.len() {
                    let q = self.clauses[r].lits[k];
                    if q.var().index() != v && self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Runs the CDCL loop with the given assumption literals asserted as
    /// pseudo-decisions (MiniSat's incremental interface). `Unsat` under
    /// assumptions does *not* poison the solver: only a genuine level-0
    /// conflict makes the clause database permanently inconsistent. When the
    /// answer is an assumption failure, [`SatSolver::failed_assumptions`]
    /// names the responsible subset. `budget.max_conflicts` bounds the
    /// conflicts of *this call* (not cumulative across the session).
    pub fn solve_under_assumptions(
        &mut self,
        assumptions: &[Lit],
        budget: SatBudget,
    ) -> SatOutcome {
        self.final_conflict.clear();
        if !self.ok {
            return SatOutcome::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatOutcome::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = luby(restart_count) * 100;
        let mut learnt_cap = (self.clauses.len() / 3).max(1000);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], usize::MAX);
                    debug_assert!(ok);
                } else {
                    let ci = self.clauses.len();
                    self.watch(learnt[0], learnt[1], ci);
                    self.watch(learnt[1], learnt[0], ci);
                    let first = learnt[0];
                    self.clauses.push(Clause {
                        lits: learnt,
                        learnt: true,
                        activity: 0.0,
                    });
                    self.num_learnt += 1;
                    self.bump_clause(ci);
                    let ok = self.enqueue(first, ci);
                    debug_assert!(ok);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                // Budget checks on this call's conflicts (cheap point to
                // test the deadline).
                let call_conflicts = self.stats.conflicts - start_conflicts;
                if let Some(mc) = budget.max_conflicts {
                    if call_conflicts >= mc {
                        self.backtrack(0);
                        return SatOutcome::Unknown;
                    }
                }
                if let Some(dl) = budget.deadline {
                    if call_conflicts.is_multiple_of(256) && Instant::now() >= dl {
                        self.backtrack(0);
                        return SatOutcome::Unknown;
                    }
                }
            } else {
                if conflicts_until_restart == 0 {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart = luby(restart_count) * 100;
                    self.backtrack(0);
                }
                if self.num_learnt > learnt_cap {
                    self.reduce_db();
                    learnt_cap += learnt_cap / 10;
                }
                // Re-assert assumptions as pseudo-decisions: assumption `i`
                // lives at decision level `i + 1` (already-true assumptions
                // get an empty level to keep the indexing aligned).
                let mut asserted = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        1 => {
                            self.trail_lim.push(self.trail.len());
                        }
                        0 => {
                            self.analyze_final(p);
                            self.backtrack(0);
                            return SatOutcome::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            let ok = self.enqueue(p, usize::MAX);
                            debug_assert!(ok);
                            asserted = true;
                            break;
                        }
                    }
                }
                if asserted {
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
                        self.backtrack(0);
                        return SatOutcome::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, usize::MAX);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    // --- activity heap (binary max-heap with position index) ---

    fn heap_less(&self, a: BVar, b: BVar) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: BVar) {
        self.heap_index[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = a;
        self.heap_index[self.heap[b].index()] = b;
    }

    fn heap_remove_top(&mut self) {
        let top = self.heap[0];
        self.heap_index[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("heap nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.index()] = 0;
            self.heap_down(0);
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(i: u64) -> u64 {
    let mut i = i + 1; // 1-based position in the sequence
    loop {
        // Smallest k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Solves a CNF with the given budget (convenience wrapper).
pub fn solve_cnf(cnf: &Cnf, budget: SatBudget) -> SatOutcome {
    SatSolver::new(cnf).solve(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(BVar(v), pos)
    }

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        cnf.add_unit(Lit::pos(a));
        match solve_cnf(&cnf, SatBudget::default()) {
            SatOutcome::Sat(m) => assert!(m[0]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        cnf.add_unit(Lit::pos(a));
        cnf.add_unit(Lit::neg(a));
        assert_eq!(solve_cnf(&cnf, SatBudget::default()), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut cnf = Cnf::new();
        cnf.fresh();
        cnf.add(vec![]);
        assert_eq!(solve_cnf(&cnf, SatBudget::default()), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
        let mut cnf = Cnf::new();
        let mut p = [[BVar(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.fresh();
            }
        }
        for row in &p {
            cnf.add(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)] // j indexes a column across rows
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(solve_cnf(&cnf, SatBudget::default()), SatOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        // Random-ish structured instance: chain of implications plus a few
        // ORs; verify the returned model against Cnf::eval.
        let mut cnf = Cnf::new();
        let vars: Vec<BVar> = (0..20).map(|_| cnf.fresh()).collect();
        for w in vars.windows(2) {
            cnf.add(vec![Lit::neg(w[0]), Lit::pos(w[1])]); // v_i -> v_{i+1}
        }
        cnf.add_unit(Lit::pos(vars[0]));
        cnf.add(vec![Lit::neg(vars[19]), Lit::pos(vars[5])]);
        match solve_cnf(&cnf, SatBudget::default()) {
            SatOutcome::Sat(m) => assert!(cnf.eval(&m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard instance (pigeonhole 6 into 5) with a 1-conflict budget.
        let mut cnf = Cnf::new();
        let n = 6;
        let h = 5;
        let mut p = vec![vec![BVar(0); h]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.fresh();
            }
        }
        for row in &p {
            cnf.add(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        #[allow(clippy::needless_range_loop)] // j indexes a column across rows
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf.add(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let budget = SatBudget {
            max_conflicts: Some(1),
            deadline: None,
        };
        assert_eq!(solve_cnf(&cnf, budget), SatOutcome::Unknown);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 xor x1 = 1 encoded in CNF; chain a few.
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let c = cnf.fresh();
        // a xor b = true
        cnf.add(vec![lit(a.0, true), lit(b.0, true)]);
        cnf.add(vec![lit(a.0, false), lit(b.0, false)]);
        // b xor c = true
        cnf.add(vec![lit(b.0, true), lit(c.0, true)]);
        cnf.add(vec![lit(b.0, false), lit(c.0, false)]);
        // force a
        cnf.add_unit(Lit::pos(a));
        match solve_cnf(&cnf, SatBudget::default()) {
            SatOutcome::Sat(m) => {
                assert!(m[a.index()]);
                assert!(!m[b.index()]);
                assert!(m[c.index()]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_flip_between_calls() {
        // x ∨ y with assumption sequences exercising both polarities.
        let mut cnf = Cnf::new();
        let x = cnf.fresh();
        let y = cnf.fresh();
        cnf.add(vec![Lit::pos(x), Lit::pos(y)]);
        let mut s = SatSolver::new(&cnf);
        // Assume ¬x: y must hold.
        match s.solve_under_assumptions(&[Lit::neg(x)], SatBudget::default()) {
            SatOutcome::Sat(m) => {
                assert!(!m[x.index()]);
                assert!(m[y.index()]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // Flip: assume ¬y — x must hold.
        match s.solve_under_assumptions(&[Lit::neg(y)], SatBudget::default()) {
            SatOutcome::Sat(m) => {
                assert!(m[x.index()]);
                assert!(!m[y.index()]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // Contradictory assumptions: unsat, but the solver stays usable.
        assert_eq!(
            s.solve_under_assumptions(&[Lit::neg(x), Lit::neg(y)], SatBudget::default()),
            SatOutcome::Unsat
        );
        assert!(s.is_ok(), "assumption failure must not poison the solver");
        let failed = s.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        for l in &failed {
            assert!(
                *l == Lit::neg(x) || *l == Lit::neg(y),
                "foreign literal {l:?}"
            );
        }
        // And a later unconstrained call still answers Sat.
        assert!(matches!(
            s.solve_under_assumptions(&[], SatBudget::default()),
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn incremental_clause_addition_between_calls() {
        let mut s = SatSolver::empty();
        s.ensure_vars(2);
        let a = Lit::pos(BVar(0));
        let b = Lit::pos(BVar(1));
        s.add_clause_incremental(vec![a, b]);
        assert!(matches!(s.solve(SatBudget::default()), SatOutcome::Sat(_)));
        s.add_clause_incremental(vec![!a]);
        match s.solve(SatBudget::default()) {
            SatOutcome::Sat(m) => assert!(m[1]),
            other => panic!("expected sat, got {other:?}"),
        }
        s.add_clause_incremental(vec![!b]);
        assert_eq!(s.solve(SatBudget::default()), SatOutcome::Unsat);
        assert!(!s.is_ok(), "a genuine level-0 contradiction poisons the db");
        // Permanently unsat now: failed_assumptions stays empty.
        assert_eq!(
            s.solve_under_assumptions(&[a], SatBudget::default()),
            SatOutcome::Unsat
        );
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn unsat_after_sat_with_learnt_retention() {
        // Pigeonhole 3→2 is unsat; guarded by a selector literal g the
        // combined instance is sat with ¬g and unsat assuming g.
        let mut cnf = Cnf::new();
        let g = cnf.fresh();
        let mut p = [[BVar(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = cnf.fresh();
            }
        }
        for row in &p {
            cnf.add(vec![Lit::neg(g), Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add(vec![Lit::neg(g), Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let mut s = SatSolver::new(&cnf);
        assert!(matches!(
            s.solve_under_assumptions(&[Lit::neg(g)], SatBudget::default()),
            SatOutcome::Sat(_)
        ));
        assert_eq!(
            s.solve_under_assumptions(&[Lit::pos(g)], SatBudget::default()),
            SatOutcome::Unsat
        );
        assert_eq!(s.failed_assumptions(), &[Lit::pos(g)]);
        // Learnt clauses from the unsat call must not break later sat calls.
        assert!(matches!(
            s.solve_under_assumptions(&[Lit::neg(g)], SatBudget::default()),
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn ensure_vars_grows_universe() {
        let mut s = SatSolver::empty();
        assert_eq!(s.num_vars(), 0);
        s.ensure_vars(5);
        assert_eq!(s.num_vars(), 5);
        s.ensure_vars(3); // never shrinks
        assert_eq!(s.num_vars(), 5);
        s.add_clause_incremental(vec![Lit::pos(BVar(4))]);
        match s.solve(SatBudget::default()) {
            SatOutcome::Sat(m) => assert!(m[4]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}

//! The analysis driver: propagate facts sparsely, then decide feasibility.
//!
//! This is the outer loop of Algorithm 5: sparse propagation collects Π
//! (with **no** conditions), and a pluggable [`FeasibilityEngine`] answers
//! `ir_based_smt_solve(Π)`. Engines implement the fused designs of this
//! crate or the conventional baselines of `fusion-baselines`; the driver,
//! reports and accounting are shared so comparisons are apples-to-apples.

use crate::cache::{path_set_key, CacheStats, VerdictCache};
use crate::checkers::Checker;
use crate::memory::{run_accounting, Category, MemoryAccountant, BYTES_PER_DEF};
use crate::propagate::{
    discover_all, discover_source, source_vertices, Candidate, PropagateOptions,
};
use crate::slice_cache::{SliceCache, SliceCacheStats};
use crate::stream::BoundedQueue;
use fusion_ir::ssa::Program;
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The verdict on one path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Some execution takes the paths: a real flow.
    Feasible,
    /// No execution can take the paths.
    Infeasible,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Everything a feasibility query reports back.
#[derive(Debug, Clone, Copy)]
pub struct CheckOutcome {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Wall-clock time of the query.
    pub duration: Duration,
    /// DAG node count of the condition the engine built (0 if none).
    pub condition_nodes: u64,
    /// `(context, function)` clones materialized.
    pub instances: usize,
    /// Whether preprocessing alone decided the query.
    pub preprocess_decided: bool,
}

/// A per-query record kept for the Fig. 11 scatter plot.
#[derive(Debug, Clone, Copy)]
pub struct SolveRecord {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Query duration.
    pub duration: Duration,
    /// Whether preprocessing decided it.
    pub preprocess_decided: bool,
    /// Condition size (DAG nodes).
    pub condition_nodes: u64,
}

impl SolveRecord {
    /// Extracts the record from an outcome.
    pub fn from_outcome(o: &CheckOutcome) -> SolveRecord {
        SolveRecord {
            feasibility: o.feasibility,
            duration: o.duration,
            preprocess_decided: o.preprocess_decided,
            condition_nodes: o.condition_nodes,
        }
    }
}

/// A path-feasibility decision procedure — the pluggable half of the fused
/// design. Implementations must not require the caller to compute any
/// condition: they receive the dependence paths and the graph only.
pub trait FeasibilityEngine {
    /// A short identifier for tables.
    fn name(&self) -> &'static str;

    /// Decides whether the conjunction of the given paths' conditions is
    /// satisfiable (`⋀_{π ∈ Π} φ_π` of Algorithm 2).
    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome;

    /// Announces a *slice-group* boundary: the driver is about to issue a
    /// batch of related queries (same sink function, key `group`). Engines
    /// that retain per-epoch state (pools, sessions) may use this point to
    /// bound it; verdicts must not depend on where boundaries fall. The
    /// default does nothing.
    fn begin_group(&mut self, _group: u64) {}

    /// Announces that the next queries are the **alternative paths of one
    /// candidate** with canonical content key `key` and full path set
    /// `paths`. Engines may use this to compute the backward closure
    /// *once* for the union of the paths and reuse it for every
    /// alternative (the closure of a superset contains every definitional
    /// equation a subset needs, and extra definitional equations over
    /// acyclic SSA never change satisfiability — constraints are only
    /// asserted for the queried path). Valid until the next
    /// `begin_candidate` or `begin_group`. The default does nothing,
    /// which is what keeps the conventional baselines
    /// (`UnoptimizedGraphSolver`, Pinpoint, AR) faithful to the paper's
    /// per-query slicing: they bypass both the per-candidate reuse and
    /// the [`SliceCache`].
    fn begin_candidate(
        &mut self,
        _program: &Program,
        _pdg: &Pdg,
        _key: u64,
        _paths: &[DependencePath],
    ) {
    }

    /// Hands the engine a shared slice-closure memo. Engines that slice
    /// per query may consult it; the default ignores it (baselines
    /// bypass the cache so their numbers stay faithful to the
    /// conventional design).
    fn attach_slice_cache(&mut self, _cache: Arc<SliceCache>) {}

    /// Cumulative per-stage wall/counter totals over the engine's
    /// lifetime (monotonic). The default reports zeros for engines that
    /// do not instrument their stages.
    fn stage_totals(&self) -> EngineStages {
        EngineStages::default()
    }

    /// The engine's memory accountant.
    fn memory(&self) -> &MemoryAccountant;

    /// Per-query records collected so far.
    fn records(&self) -> &[SolveRecord];
}

/// Cumulative stage totals an instrumented engine reports via
/// [`FeasibilityEngine::stage_totals`]: how query wall-time splits into
/// slicing, translation (term/clause building), and solving, plus how
/// often a slice closure was computed from scratch versus reused (from
/// the per-candidate union or the shared [`SliceCache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStages {
    /// Wall-time spent computing slice closures and constraints.
    pub slice_wall: Duration,
    /// Wall-time spent building terms/instances from the slice.
    pub translate_wall: Duration,
    /// Wall-time spent deciding satisfiability.
    pub solve_wall: Duration,
    /// Closures computed from scratch.
    pub slices_computed: u64,
    /// Closures served by per-candidate reuse or the shared memo.
    pub slices_reused: u64,
}

impl EngineStages {
    /// Sums another engine's totals into this one.
    pub fn add(&mut self, other: &EngineStages) {
        self.slice_wall += other.slice_wall;
        self.translate_wall += other.translate_wall;
        self.solve_wall += other.solve_wall;
        self.slices_computed += other.slices_computed;
        self.slices_reused += other.slices_reused;
    }

    /// Deltas relative to an `earlier` snapshot of the same engine.
    pub fn since(&self, earlier: &EngineStages) -> EngineStages {
        EngineStages {
            slice_wall: self.slice_wall.saturating_sub(earlier.slice_wall),
            translate_wall: self.translate_wall.saturating_sub(earlier.translate_wall),
            solve_wall: self.solve_wall.saturating_sub(earlier.solve_wall),
            slices_computed: self.slices_computed - earlier.slices_computed,
            slices_reused: self.slices_reused - earlier.slices_reused,
        }
    }
}

/// Per-stage wall/counter breakdown of one analysis run
/// (discover → slice → translate → solve), surfaced by the CLI's
/// `--stats`/`--json`. Engine stage walls are summed across workers in
/// parallel runs (CPU-time-like); `discover_wall` is the wall-clock
/// span of the discovery stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Wall-clock span of the discovery stage (sharded or not). In the
    /// streaming pipeline this overlaps the solve stage.
    pub discover_wall: Duration,
    /// Total DFS steps taken by discovery.
    pub discovery_steps: u64,
    /// Discovery shard (producer) count.
    pub discovery_shards: usize,
    /// Engine time computing slice closures/constraints (summed over
    /// workers).
    pub slice_wall: Duration,
    /// Engine time building terms/instances (summed over workers).
    pub translate_wall: Duration,
    /// Engine time deciding satisfiability (summed over workers).
    pub solve_wall: Duration,
    /// Slice closures computed from scratch.
    pub slices_computed: u64,
    /// Slice closures reused (per-candidate union or shared memo).
    pub slices_reused: u64,
}

impl StageStats {
    fn add_engine(&mut self, e: &EngineStages) {
        self.slice_wall += e.slice_wall;
        self.translate_wall += e.translate_wall;
        self.solve_wall += e.solve_wall;
        self.slices_computed += e.slices_computed;
        self.slices_reused += e.slices_reused;
    }
}

/// One reported bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The fact's origin.
    pub source: Vertex,
    /// The sink statement.
    pub sink: Vertex,
    /// The verdict that triggered the report ([`Feasibility::Feasible`] or,
    /// conservatively, [`Feasibility::Unknown`]).
    pub verdict: Feasibility,
    /// The witnessing (or undecided) path.
    pub path: DependencePath,
}

/// Aggregate results of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Engine name. Sequential runs use the engine's own name; parallel
    /// runs keep it and suffix the thread count (e.g. `"fusion×4"`).
    pub engine: String,
    /// Bug reports (feasible or undecided candidates).
    pub reports: Vec<BugReport>,
    /// Candidates whose every path was proven infeasible.
    pub suppressed: usize,
    /// Total candidates discovered by propagation.
    pub candidates: usize,
    /// Feasibility queries actually issued to an engine (cache hits are
    /// counted in [`AnalysisRun::cache`], not here).
    pub queries: usize,
    /// Wall-clock duration: propagation phase.
    pub propagate_time: Duration,
    /// Wall-clock duration: solving phase.
    pub solve_time: Duration,
    /// Peak tracked memory, bytes (all categories).
    pub peak_memory: u64,
    /// Verdict-cache traffic attributable to this run (all zeros when the
    /// run was uncached).
    pub cache: CacheStats,
    /// Slice-closure memo traffic attributable to this run (all zeros
    /// when no [`SliceCache`] was configured).
    pub slice: SliceCacheStats,
    /// Per-stage wall/counter breakdown (discover/slice/translate/solve).
    pub stages: StageStats,
}

impl AnalysisRun {
    /// Total wall-clock time. In the streaming pipeline `solve_time` is
    /// defined as `pipeline_wall − discovery span`, so this is the true
    /// end-to-end wall for every driver.
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.solve_time
    }
}

/// Configuration of [`analyze`], [`analyze_parallel`], and
/// [`analyze_streaming`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Propagation limits.
    pub propagate: PropagateOptions,
    /// Whether the drivers memoize path verdicts in a [`VerdictCache`]
    /// (on by default). [`analyze`]/[`analyze_parallel`] allocate a
    /// run-local cache; use the `*_with_cache` variants to share one
    /// cache across runs or checkers.
    pub use_cache: bool,
    /// Shared slice-closure memo handed to engines that support it (the
    /// `FusionSolver`; baselines bypass it). `Some` by default with a
    /// run-local cache; pass a shared `Arc` to memoize closures across
    /// runs, checkers, and engines, or `None` to disable memoization
    /// entirely (engines still reuse one closure across the alternative
    /// paths of a single candidate).
    pub slice_cache: Option<Arc<SliceCache>>,
    /// Discovery shard count for the sharded drivers. `None` (default)
    /// uses the driver's thread count; the sequential driver always
    /// discovers on one shard.
    pub discover_shards: Option<usize>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            propagate: PropagateOptions::default(),
            use_cache: true,
            slice_cache: Some(Arc::new(SliceCache::new())),
            discover_shards: None,
        }
    }
}

impl AnalysisOptions {
    /// Default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Default options with verdict caching *and* slice memoization
    /// disabled — the fully conventional per-query configuration.
    pub fn without_cache() -> Self {
        Self {
            use_cache: false,
            slice_cache: None,
            ..Self::default()
        }
    }

    /// Replaces the slice-closure memo (e.g. with one shared across
    /// checkers or runs).
    pub fn with_slice_cache(mut self, cache: Arc<SliceCache>) -> Self {
        self.slice_cache = Some(cache);
        self
    }
}

/// The outcome for one candidate: either all paths were proven
/// infeasible (suppressed) or a report was produced.
enum CandVerdict {
    Suppressed,
    Report(BugReport),
}

/// Groups candidate indices by sink function — the slice-group batching
/// unit. Candidates against the same sink share most of their slices, so
/// solving them back-to-back maximizes what an incremental engine can
/// reuse (cached local conditions, memoized instantiations, session
/// encodings). Groups appear in first-occurrence order and indices stay
/// ascending within a group, so a driver that walks the groups and sorts
/// results by index reproduces the ungrouped candidate order exactly.
fn group_by_sink(candidates: &[Candidate]) -> Vec<(u64, Vec<usize>)> {
    let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut slot: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        let key = c.sink.func.0 as u64;
        match slot.get(&key) {
            Some(&g) => order[g].1.push(i),
            None => {
                slot.insert(key, order.len());
                order.push((key, vec![i]));
            }
        }
    }
    order
}

/// Decides one candidate: query each alternative path until one is
/// feasible. With a cache, each path's verdict is looked up by canonical
/// key first and engine misses are stored back (Unknown is never stored).
/// `queries` counts only queries actually issued to the engine.
fn solve_candidate(
    program: &Program,
    pdg: &Pdg,
    engine: &mut dyn FeasibilityEngine,
    cache: Option<&VerdictCache>,
    cand: &Candidate,
    queries: &mut usize,
) -> CandVerdict {
    // Announce the candidate so the engine can compute the backward
    // closure once for the union of the alternative paths (lazily — a
    // candidate fully answered by the verdict cache never slices).
    let cand_key = path_set_key(program, &cand.paths);
    engine.begin_candidate(program, pdg, cand_key, &cand.paths);
    let mut verdict = Feasibility::Infeasible;
    let mut witness: Option<&DependencePath> = None;
    for path in &cand.paths {
        let slice = std::slice::from_ref(path);
        let feasibility = match cache {
            Some(c) => {
                let key = VerdictCache::key(program, slice);
                match c.get(key) {
                    Some(v) => v,
                    None => {
                        *queries += 1;
                        let o = engine.check_paths(program, pdg, slice);
                        c.insert(key, o.feasibility);
                        o.feasibility
                    }
                }
            }
            None => {
                *queries += 1;
                engine.check_paths(program, pdg, slice).feasibility
            }
        };
        match feasibility {
            Feasibility::Feasible => {
                verdict = Feasibility::Feasible;
                witness = Some(path);
                break;
            }
            Feasibility::Unknown => {
                verdict = Feasibility::Unknown;
                witness.get_or_insert(path);
            }
            Feasibility::Infeasible => {}
        }
    }
    match verdict {
        Feasibility::Infeasible => CandVerdict::Suppressed,
        v => CandVerdict::Report(BugReport {
            source: cand.source,
            sink: cand.sink,
            verdict: v,
            path: witness.expect("non-infeasible verdict has a path").clone(),
        }),
    }
}

/// Runs one checker over a program with the given feasibility engine.
///
/// A candidate is reported when *any* of its alternative paths is feasible;
/// it is suppressed only when every path is proven infeasible; undecided
/// candidates are reported conservatively (matching how bug detectors treat
/// solver timeouts).
pub fn analyze(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_with_cache(program, pdg, checker, engine, options, cache)
}

/// [`analyze`] with an explicit, possibly shared, verdict cache (`None`
/// disables caching regardless of [`AnalysisOptions::use_cache`]). The
/// returned [`AnalysisRun::cache`] counters are scoped to this run even
/// when the cache is shared.
pub fn analyze_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    if let Some(sc) = &options.slice_cache {
        engine.attach_slice_cache(Arc::clone(sc));
    }
    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let stages_before = engine.stage_totals();
    let t0 = Instant::now();
    let discovery = discover_all(program, pdg, checker, &options.propagate, 1);
    let candidates = discovery.candidates;
    let propagate_time = t0.elapsed();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    let mut reports = Vec::new();
    let mut suppressed = 0usize;
    let mut queries = 0usize;
    // Slice-group batching: candidates sharing a sink function are solved
    // back-to-back, so an incremental engine sees maximally related
    // queries in a row. Results are re-sorted by candidate index, so
    // grouping never changes the report order.
    let groups = group_by_sink(&candidates);
    let t1 = Instant::now();
    let mut results: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    for (key, idxs) in &groups {
        engine.begin_group(*key);
        for &idx in idxs {
            let v = solve_candidate(program, pdg, engine, cache, &candidates[idx], &mut queries);
            results.push((idx, v));
        }
    }
    results.sort_by_key(|(idx, _)| *idx);
    for (_, v) in results {
        match v {
            CandVerdict::Suppressed => suppressed += 1,
            CandVerdict::Report(r) => reports.push(r),
        }
    }
    let solve_time = t1.elapsed();

    // The graph (and the caches, if any) is retained for the whole run,
    // for every engine: one accounting path shared with the parallel
    // drivers. Discovery's transient visited-set bytes ride along as a
    // concurrent accountant, exactly as in the sharded drivers.
    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(
        std::iter::once(engine.memory()).chain(discovery.memory.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discovery.steps,
        discovery_shards: discovery.shards,
        ..StageStats::default()
    };
    stages.add_engine(&engine.stage_totals().since(&stages_before));

    AnalysisRun {
        engine: engine.name().to_string(),
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

/// Runs one checker with per-thread engines, fanning candidates out over
/// `threads` worker threads (the paper's evaluation used fifteen). Each
/// worker owns an engine built by `factory`, so no locking is needed on
/// solver state.
///
/// Work distribution is a **work-stealing queue over slice groups**:
/// candidates are batched by sink function ([`FeasibilityEngine::begin_group`])
/// and an atomic cursor hands whole groups to workers, so a worker stuck
/// behind one slow candidate no longer idles the rest of its stride while
/// related queries still land on the same engine back-to-back (which is
/// what makes incremental sessions pay off). Workers share one
/// [`VerdictCache`] (unless disabled via [`AnalysisOptions::use_cache`]),
/// and results are merged back in candidate order, so the report list is
/// byte-identical to the sequential driver's regardless of thread count
/// or steal order.
pub fn analyze_parallel(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_parallel_with_cache(program, pdg, checker, factory, threads, options, cache)
}

/// [`analyze_parallel`] with an explicit, possibly shared, verdict cache
/// (`None` disables caching regardless of [`AnalysisOptions::use_cache`]).
pub fn analyze_parallel_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let threads = threads.max(1);
    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let t0 = Instant::now();
    // Sharded discovery: the barrier driver still waits for the full
    // candidate list (use `analyze_streaming_with_cache` to overlap),
    // but the discovery itself fans out across the same thread count,
    // merged deterministically by source index.
    let shards = options.discover_shards.unwrap_or(threads);
    let discovery = discover_all(program, pdg, checker, &options.propagate, shards);
    let candidates = discovery.candidates;
    let propagate_time = t0.elapsed();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    struct WorkerOut {
        /// The factory-built engine's name (same for every worker).
        name: &'static str,
        /// `(candidate index, outcome)` pairs, in steal order.
        results: Vec<(usize, CandVerdict)>,
        queries: usize,
        memory: MemoryAccountant,
        stages: EngineStages,
    }

    // Work-stealing cursor over slice groups: workers atomically grab one
    // group at a time. Group granularity keeps related queries on one
    // engine (the point of the batching) while `fetch_add` keeps the grab
    // wait-free and the tail balanced.
    let groups = group_by_sink(&candidates);
    let cursor = AtomicUsize::new(0);

    let t1 = Instant::now();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cands = &candidates;
            let groups = &groups;
            let cursor = &cursor;
            let slice_cache = options.slice_cache.clone();
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                if let Some(sc) = slice_cache {
                    engine.attach_slice_cache(sc);
                }
                let mut out = WorkerOut {
                    name: engine.name(),
                    results: Vec::new(),
                    queries: 0,
                    memory: MemoryAccountant::new(),
                    stages: EngineStages::default(),
                };
                loop {
                    let g = cursor.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    let (key, idxs) = &groups[g];
                    engine.begin_group(*key);
                    for &idx in idxs {
                        let v = solve_candidate(
                            program,
                            pdg,
                            engine.as_mut(),
                            cache,
                            &cands[idx],
                            &mut out.queries,
                        );
                        out.results.push((idx, v));
                    }
                }
                out.memory = engine.memory().clone();
                out.stages = engine.stage_totals();
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    let solve_time = t1.elapsed();

    // Merge in candidate order: the exact order the sequential driver
    // would have produced, independent of which worker stole what.
    let mut merged: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    let mut queries = 0usize;
    for o in &outputs {
        queries += o.queries;
    }
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("parallel");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discovery.steps,
        discovery_shards: discovery.shards,
        ..StageStats::default()
    };
    for o in outputs {
        memories.push(o.memory);
        stages.add_engine(&o.stages);
        merged.extend(o.results);
    }
    merged.sort_by_key(|(idx, _)| *idx);
    let mut reports: Vec<BugReport> = Vec::new();
    let mut suppressed = 0usize;
    for (_, v) in merged {
        match v {
            CandVerdict::Suppressed => suppressed += 1,
            CandVerdict::Report(r) => reports.push(r),
        }
    }

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(
        memories.iter().chain(discovery.memory.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();

    AnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

/// Runs one checker through the **streaming discovery→solve pipeline**:
/// discovery shards push completed sink groups through a bounded channel
/// into group-stealing solve workers, so solving overlaps discovery
/// wall-time instead of waiting behind the barrier of
/// [`analyze_parallel`]. Reports are merged by `(source, candidate)`
/// index and are **byte-identical** to the sequential driver's at any
/// thread count. Allocates a run-local verdict cache per
/// [`AnalysisOptions::use_cache`]; use
/// [`analyze_streaming_with_cache`] to share one.
pub fn analyze_streaming(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_streaming_with_cache(program, pdg, checker, factory, threads, options, cache)
}

/// [`analyze_streaming`] with an explicit, possibly shared, verdict
/// cache (`None` disables caching regardless of
/// [`AnalysisOptions::use_cache`]).
///
/// Timing semantics: `propagate_time` is the wall-clock span until the
/// last discovery shard finished; `solve_time` is the *rest* of the
/// pipeline wall, so [`AnalysisRun::total_time`] equals the true
/// end-to-end wall (overlap is visible as `propagate_time +
/// solve_time < barrier driver's sum`).
///
/// With one thread there is nothing to overlap: the call delegates to
/// the sequential driver (same discovery, same accounting), so
/// 1-thread streaming peaks equal the sequential driver's exactly.
pub fn analyze_streaming_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let threads = threads.max(1);
    if threads == 1 {
        let mut engine = factory();
        let name = engine.name();
        let mut run = analyze_with_cache(program, pdg, checker, engine.as_mut(), options, cache);
        run.engine = format!("{name}×1");
        return run;
    }

    /// One unit of streamed work: the candidates of one (source, sink
    /// function) group, tagged for the deterministic merge.
    struct StreamGroup {
        source_idx: usize,
        sink_key: u64,
        /// `(candidate index within the source, candidate)`.
        cands: Vec<(usize, Candidate)>,
    }

    struct WorkerOut {
        name: &'static str,
        /// `((source index, local candidate index), outcome)` pairs.
        results: Vec<((usize, usize), CandVerdict)>,
        queries: usize,
        memory: MemoryAccountant,
        stages: EngineStages,
    }

    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    let sources = source_vertices(program, checker);
    let producers = options
        .discover_shards
        .unwrap_or(threads)
        .clamp(1, sources.len().max(1));
    // One bounded queue per solve worker, with groups routed by
    // `sink_key % threads`. Sticky routing sends every group of one sink
    // function to the same worker, so the engine's group-scoped state
    // (the incremental session, instance memo) amortizes across the many
    // per-source groups a sink function fragments into under streaming —
    // matching the barrier driver's one-global-group-per-sink behavior.
    // The parallelism granularity is unchanged: the barrier driver also
    // hands a sink function's whole group to a single worker.
    let queues: Vec<BoundedQueue<StreamGroup>> = (0..threads)
        .map(|_| BoundedQueue::new(2, producers))
        .collect();
    let src_cursor = AtomicUsize::new(0);
    let producers_left = AtomicUsize::new(producers);
    let discover_span: Mutex<Duration> = Mutex::new(Duration::ZERO);
    let discover_steps = std::sync::atomic::AtomicU64::new(0);
    let candidates_total = AtomicUsize::new(0);
    let discovery_accts: Mutex<Vec<MemoryAccountant>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        // Discovery shards (producers): steal sources, group each
        // source's candidates by sink function, stream the groups out.
        for _ in 0..producers {
            let queues = &queues;
            let src_cursor = &src_cursor;
            let producers_left = &producers_left;
            let discover_span = &discover_span;
            let discover_steps = &discover_steps;
            let candidates_total = &candidates_total;
            let discovery_accts = &discovery_accts;
            let sources = &sources;
            scope.spawn(move || {
                let mut acct = MemoryAccountant::new();
                loop {
                    let i = src_cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= sources.len() {
                        break;
                    }
                    let d = discover_source(program, pdg, checker, &options.propagate, sources[i]);
                    acct.charge(Category::Graph, d.state_bytes);
                    acct.release(Category::Graph, d.state_bytes);
                    discover_steps.fetch_add(d.steps, Ordering::Relaxed);
                    candidates_total.fetch_add(d.candidates.len(), Ordering::Relaxed);
                    // Group by sink function within the source
                    // (first-occurrence order), preserving local indices
                    // for the merge.
                    let mut order: Vec<StreamGroup> = Vec::new();
                    let mut slot: std::collections::HashMap<u64, usize> =
                        std::collections::HashMap::new();
                    for (local, cand) in d.candidates.into_iter().enumerate() {
                        let key = cand.sink.func.0 as u64;
                        match slot.get(&key) {
                            Some(&g) => order[g].cands.push((local, cand)),
                            None => {
                                slot.insert(key, order.len());
                                order.push(StreamGroup {
                                    source_idx: i,
                                    sink_key: key,
                                    cands: vec![(local, cand)],
                                });
                            }
                        }
                    }
                    for group in order {
                        let worker = (group.sink_key as usize) % queues.len();
                        queues[worker].send(group);
                    }
                }
                // The discovery stage's wall span ends when the *last*
                // shard finishes.
                if producers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
                    *discover_span.lock().expect("span lock") = t0.elapsed();
                }
                for queue in queues {
                    queue.producer_done();
                }
                discovery_accts.lock().expect("acct lock").push(acct);
            });
        }
        // Solve workers (consumers), each draining its own sticky queue.
        let mut handles = Vec::new();
        for queue in queues.iter().take(threads) {
            let slice_cache = options.slice_cache.clone();
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                if let Some(sc) = slice_cache {
                    engine.attach_slice_cache(sc);
                }
                let mut out = WorkerOut {
                    name: engine.name(),
                    results: Vec::new(),
                    queries: 0,
                    memory: MemoryAccountant::new(),
                    stages: EngineStages::default(),
                };
                // Streamed groups fragment one sink function across many
                // sources; a group boundary is only announced when the
                // sink key actually changes, so the engine's group-scoped
                // state spans the fragments exactly as it spans the
                // barrier driver's single global group. (Verdicts never
                // depend on where boundaries fall — `begin_group`'s
                // contract — so this is purely a time/space trade.)
                let mut last_key: Option<u64> = None;
                while let Some(group) = queue.recv() {
                    if last_key != Some(group.sink_key) {
                        engine.begin_group(group.sink_key);
                        last_key = Some(group.sink_key);
                    }
                    for (local_idx, cand) in &group.cands {
                        let v = solve_candidate(
                            program,
                            pdg,
                            engine.as_mut(),
                            cache,
                            cand,
                            &mut out.queries,
                        );
                        out.results.push(((group.source_idx, *local_idx), v));
                    }
                }
                out.memory = engine.memory().clone();
                out.stages = engine.stage_totals();
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("solve worker"))
            .collect()
    });
    let pipeline_wall = t0.elapsed();
    let propagate_time = *discover_span.lock().expect("span lock");
    let solve_time = pipeline_wall.saturating_sub(propagate_time);

    // Deterministic merge: (source index, candidate index within the
    // source) reproduces the sequential discovery order exactly.
    let mut merged: Vec<((usize, usize), CandVerdict)> = Vec::new();
    let mut queries = 0usize;
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("streaming");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discover_steps.load(Ordering::Relaxed),
        discovery_shards: producers,
        ..StageStats::default()
    };
    for o in outputs {
        queries += o.queries;
        memories.push(o.memory);
        stages.add_engine(&o.stages);
        merged.extend(o.results);
    }
    merged.sort_by_key(|(key, _)| *key);
    let mut reports: Vec<BugReport> = Vec::new();
    let mut suppressed = 0usize;
    for (_, v) in merged {
        match v {
            CandVerdict::Suppressed => suppressed += 1,
            CandVerdict::Report(r) => reports.push(r),
        }
    }

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let discovery_accts = discovery_accts.into_inner().expect("acct lock");
    let mem = run_accounting(
        memories.iter().chain(discovery_accts.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();

    AnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        reports,
        suppressed,
        candidates: candidates_total.load(Ordering::Relaxed),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn run(src: &str) -> AnalysisRun {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        )
    }

    #[test]
    fn reports_feasible_and_suppresses_infeasible() {
        let run = run(
            "extern fn deref(p);\n\
             fn feasible(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn infeasible(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        );
        assert_eq!(run.candidates, 2);
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 1);
        assert_eq!(run.reports[0].verdict, Feasibility::Feasible);
    }

    #[test]
    fn unconditional_flow_is_reported() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 0);
    }

    #[test]
    fn clean_program_reports_nothing() {
        let run = run("extern fn deref(p); fn f(x) { deref(x); return 0; }");
        assert_eq!(run.candidates, 0);
        assert!(run.reports.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = "extern fn deref(p);\n\
             fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
             fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
             fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        let factory = || -> Box<dyn FeasibilityEngine> {
            Box::new(FusionSolver::new(SolverConfig::default()))
        };
        for threads in [1usize, 2, 4] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &factory,
                threads,
                &AnalysisOptions::new(),
            );
            let key = |r: &crate::engine::BugReport| (r.source, r.sink);
            let mut a: Vec<_> = seq.reports.iter().map(key).collect();
            let mut b: Vec<_> = par.reports.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }

    #[test]
    fn timings_and_memory_are_populated() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert!(run.peak_memory > 0);
        assert!(run.queries >= 1);
    }

    const MULTI_SRC: &str = "extern fn deref(p);\n\
         fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
         fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
         fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";

    fn fusion_factory() -> Box<dyn FeasibilityEngine> {
        Box::new(FusionSolver::new(SolverConfig::default()))
    }

    #[test]
    fn parallel_engine_name_keeps_base_and_thread_count() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let run = analyze_parallel(
            &p,
            &g,
            &Checker::null_deref(),
            &fusion_factory,
            4,
            &AnalysisOptions::new(),
        );
        assert_eq!(run.engine, "fusion×4");
    }

    #[test]
    fn sequential_and_parallel_accounting_agree() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = AnalysisOptions::without_cache();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(&p, &g, &Checker::null_deref(), &mut engine, &opts);
        // One worker: the unified accounting path must yield the exact
        // sequential peak.
        let par1 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 1, &opts);
        assert_eq!(seq.peak_memory, par1.peak_memory, "1-thread parity");
        // Many workers: each retains its own engine state, so the summed
        // peak is bounded below by the sequential peak and above by
        // `threads` sequential peaks.
        let par4 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 4, &opts);
        assert!(par4.peak_memory >= seq.peak_memory);
        assert!(par4.peak_memory <= seq.peak_memory * 4);
    }

    #[test]
    fn cached_runs_report_hits_and_identical_reports() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let uncached = {
            let mut e = FusionSolver::new(SolverConfig::default());
            analyze(
                &p,
                &g,
                &Checker::null_deref(),
                &mut e,
                &AnalysisOptions::without_cache(),
            )
        };
        assert_eq!(uncached.cache, crate::cache::CacheStats::default());

        // Two sequential runs sharing one cache: the second run is all hits.
        let shared = VerdictCache::new();
        let opts = AnalysisOptions::new();
        let mut e1 = FusionSolver::new(SolverConfig::default());
        let first = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e1,
            &opts,
            Some(&shared),
        );
        assert!(first.cache.misses > 0);
        assert!(first.cache.inserts > 0);
        let mut e2 = FusionSolver::new(SolverConfig::default());
        let second = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e2,
            &opts,
            Some(&shared),
        );
        assert!(second.cache.hits > 0, "warm cache must hit");
        assert_eq!(second.queries, 0, "every verdict came from the cache");

        for cached in [&first, &second] {
            let a: Vec<_> = uncached
                .reports
                .iter()
                .map(|r| (r.source, r.sink))
                .collect();
            let b: Vec<_> = cached.reports.iter().map(|r| (r.source, r.sink)).collect();
            assert_eq!(a, b, "cache must not change reports");
            assert_eq!(uncached.suppressed, cached.suppressed);
        }
    }

    #[test]
    fn work_stealing_merge_is_byte_identical_to_sequential() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::without_cache(),
        );
        for threads in [1usize, 2, 4, 8] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &fusion_factory,
                threads,
                &AnalysisOptions::new(),
            );
            // Not just set equality: identical order and contents.
            let a: Vec<_> = seq
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            let b: Vec<_> = par
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }
}

//! Whole-program scan: generate an industrial-shaped synthetic project and
//! scan it with Fusion and with the conventional (Pinpoint-style) design,
//! comparing cost — a miniature of the paper's headline experiment.
//!
//! ```sh
//! cargo run --release --example whole_program_scan [scale]
//! ```
//!
//! `scale` is the fraction of mysql's paper size to generate (default
//! 0.002 ≈ 4 K statements).

use fusion::checkers::CheckKind;
use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions, FeasibilityEngine};
use fusion::graph_solver::FusionSolver;
use fusion_baselines::PinpointEngine;
use fusion_ir::{compile_ast, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, score, SubjectSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    let spec = SubjectSpec::by_name("mysql").expect("subject exists");
    let cfg = spec.gen_config(scale);
    let mut subject = generate(&cfg);
    let program = compile_ast(
        &subject.surface,
        &mut subject.interner,
        CompileOptions::default(),
    )?;
    let pdg = Pdg::build(&program);
    println!(
        "generated `{}`-shaped subject at scale {scale}: {} functions, {} vertices, {} edges, {} seeded bugs",
        spec.name,
        program.functions.len(),
        pdg.stats().vertices,
        pdg.stats().edges(),
        subject.bugs.len()
    );

    let checker = Checker::null_deref();
    let budget = SolverConfig {
        timeout: Some(std::time::Duration::from_secs(10)),
        ..Default::default()
    };

    let mut fusion_engine = FusionSolver::new(budget);
    let fusion_run = analyze(
        &program,
        &pdg,
        &checker,
        &mut fusion_engine,
        &AnalysisOptions::new(),
    );
    let mut pinpoint_engine = PinpointEngine::new(budget);
    let pinpoint_run = analyze(
        &program,
        &pdg,
        &checker,
        &mut pinpoint_engine,
        &AnalysisOptions::new(),
    );

    for run in [&fusion_run, &pinpoint_run] {
        let s = score(&program, CheckKind::NullDeref, &subject.bugs, &run.reports);
        println!(
            "{:>10}: {:>8.1} ms, {:>8} KiB peak | {} reports ({} TP, {} FP, {} missed)",
            run.engine,
            run.total_time().as_secs_f64() * 1e3,
            run.peak_memory / 1024,
            run.reports.len(),
            s.true_positives,
            s.false_positives,
            s.missed,
        );
    }
    assert_eq!(
        fusion_run.reports.len(),
        pinpoint_run.reports.len(),
        "same precision"
    );
    let _ = fusion_engine.records();
    println!(
        "\nsame reports from both designs; fusion retained no path conditions, pinpoint cached {} KiB of summaries/conditions",
        (pinpoint_engine.memory().current(fusion::memory::Category::Summaries)
            + pinpoint_engine.memory().current(fusion::memory::Category::PathConditions))
            / 1024
    );
    Ok(())
}

//! Sparse propagation of data-flow facts (Algorithms 1, 2 and 5).
//!
//! This is the analysis half of the fused design: facts travel along
//! data-dependence edges only (spatial + temporal sparsity, §3.1),
//! collecting the set Π of dependence paths from sources to sinks. Crossing
//! call and return edges respects the CFL parenthesis discipline — an exit
//! must match the call site through which the path entered, or escape to an
//! unentered outer frame.
//!
//! Crucially for the paper's contribution, the propagation computes **no
//! conditions at all** (Algorithm 5): a discovered path is handed to a
//! feasibility engine afterwards. The per-function summary cache stores
//! only reachability, never formulas.
//!
//! Two implementations live here:
//!
//! * [`discover`] / [`discover_all`] — the production DFS. Cycle states
//!   are a hash set keyed on `(vertex, rolling stack hash)` (O(1) per
//!   step instead of an O(depth²) linear scan with a stack clone), and
//!   candidate dedup uses a `(source, sink) → index` map instead of a
//!   linear candidate scan. [`discover_all`] additionally shards the
//!   per-source DFS across worker threads with a deterministic merge by
//!   source index, so its output is byte-identical to the sequential
//!   run at any shard count.
//! * [`discover_reference`] — the original linear-scan implementation,
//!   kept verbatim as the oracle for the equivalence proptest
//!   (`tests/discovery_prop.rs`).

use crate::checkers::{Checker, CheckerId, CheckerSet};
use crate::compact::CompactPdg;
use crate::memory::{Category, MemoryAccountant};
use fusion_ir::ssa::{CallSiteId, Program};
use fusion_pdg::compact::SummaryChain;
use fusion_pdg::graph::{FlowTarget, Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Exploration limits (deterministic).
#[derive(Debug, Clone, Copy)]
pub struct PropagateOptions {
    /// Alternative paths kept per (source, sink) pair.
    pub max_paths_per_pair: usize,
    /// Total DFS steps per source before giving up (budget).
    pub max_steps_per_source: usize,
    /// Maximum vertices in one path.
    pub max_path_len: usize,
    /// Maximum call-string depth.
    pub max_call_depth: usize,
    /// Work-item count below which the sharded drivers discover
    /// sequentially anyway: for small programs the scoped-thread spawn +
    /// deterministic merge costs more than the DFS itself (the committed
    /// small-scale pipeline bench showed sharded discovery at ~2× the
    /// sequential wall). Candidates are byte-identical either way — the
    /// threshold only picks the cheaper schedule. `0` disables the
    /// fallback (always shard when asked to).
    pub sequential_discovery_threshold: usize,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        Self {
            max_paths_per_pair: 4,
            max_steps_per_source: 50_000,
            max_path_len: 256,
            max_call_depth: 32,
            sequential_discovery_threshold: 64,
        }
    }
}

/// A (source, sink) pair with the discovered dependence paths connecting
/// it. Each path alone witnesses the flow; feasibility of *any* of them
/// makes the candidate a bug.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The client checker this candidate belongs to — [`CheckerId(0)`]
    /// for single-checker discovery, the checker's index in the
    /// [`CheckerSet`] for a fused multi-client pass.
    ///
    /// [`CheckerId(0)`]: crate::checkers::CheckerId
    pub checker: CheckerId,
    /// Where the fact is born.
    pub source: Vertex,
    /// The sink call statement the fact reaches.
    pub sink: Vertex,
    /// Alternative dependence paths from source to sink.
    pub paths: Vec<DependencePath>,
}

/// Estimated resident bytes per DFS visited-set entry: `(Vertex, u64)`
/// key plus hash-table overhead.
pub const BYTES_PER_DFS_STATE: u64 = 48;

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one call site into a running FNV-1a hash — O(1) per push.
fn mix_site(mut h: u64, site: CallSiteId) -> u64 {
    for b in site.0.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A CFL call stack that maintains a rolling content hash: `hashes[i]`
/// is the FNV-1a hash of `sites[..=i]`, so the hash of the whole stack
/// is available in O(1) after every push *and* pop (popping just drops
/// the top prefix hash — no rehash).
#[derive(Debug, Default)]
struct CallStack {
    sites: Vec<CallSiteId>,
    hashes: Vec<u64>,
}

impl CallStack {
    fn new() -> Self {
        Self::default()
    }

    fn hash(&self) -> u64 {
        self.hashes.last().copied().unwrap_or(FNV_SEED)
    }

    fn len(&self) -> usize {
        self.sites.len()
    }

    fn last(&self) -> Option<CallSiteId> {
        self.sites.last().copied()
    }

    fn push(&mut self, site: CallSiteId) {
        self.hashes.push(mix_site(self.hash(), site));
        self.sites.push(site);
    }

    fn pop(&mut self) -> Option<CallSiteId> {
        self.hashes.pop();
        self.sites.pop()
    }
}

struct Dfs<'a> {
    program: &'a Program,
    pdg: &'a Pdg,
    checker: &'a Checker,
    /// Tag stamped on every recorded candidate (the client identity of a
    /// fused multi-checker pass).
    checker_id: CheckerId,
    /// The compacted view, when the pass ran: dead vertices are never
    /// stepped onto, and collapsed summary chains are replayed as one
    /// composite edge instead of vertex-by-vertex exploration.
    compact: Option<&'a CompactPdg>,
    opts: PropagateOptions,
    steps: usize,
    candidates: Vec<Candidate>,
    /// `(source, sink) → index into candidates`: O(1) dedup instead of
    /// the original linear candidate scan.
    index: HashMap<(Vertex, Vertex), usize>,
    /// DFS states on the current path, keyed on `(vertex, stack hash)`.
    /// A path may legitimately revisit a vertex under a *different*
    /// calling context (e.g. `id(id(q))`), so cycle detection keys on
    /// the full state; hashing the stack makes the membership test O(1)
    /// without cloning the stack per step.
    states: HashSet<(Vertex, u64)>,
    /// High-water mark of `states` — transient memory, reported up for
    /// accounting.
    max_states: usize,
}

impl<'a> Dfs<'a> {
    fn new(
        program: &'a Program,
        pdg: &'a Pdg,
        checker: &'a Checker,
        checker_id: CheckerId,
        compact: Option<&'a CompactPdg>,
        opts: PropagateOptions,
    ) -> Self {
        Self {
            program,
            pdg,
            checker,
            checker_id,
            compact,
            opts,
            steps: 0,
            candidates: Vec::new(),
            index: HashMap::new(),
            states: HashSet::new(),
            max_states: 0,
        }
    }

    fn record(&mut self, path: &DependencePath, sink: Vertex) {
        let source = path.source();
        match self.index.entry((source, sink)) {
            Entry::Occupied(e) => {
                let c = &mut self.candidates[*e.get()];
                if c.paths.len() < self.opts.max_paths_per_pair {
                    let mut full = path.clone();
                    full.push(Link::Local, sink);
                    debug_assert!(full.is_realizable());
                    c.paths.push(full);
                }
            }
            Entry::Vacant(e) => {
                let mut full = path.clone();
                full.push(Link::Local, sink);
                debug_assert!(full.is_realizable());
                e.insert(self.candidates.len());
                self.candidates.push(Candidate {
                    checker: self.checker_id,
                    source,
                    sink,
                    paths: vec![full],
                });
            }
        }
    }

    /// Whether `v` survives the compaction pass's liveness pruning (true
    /// whenever the pass did not run).
    fn live(&self, v: Vertex) -> bool {
        self.compact.is_none_or(|c| c.is_live(self.checker_id, v))
    }

    /// Replays a collapsed summary chain as one composite edge: pushes
    /// the chain's original `(link, vertex)` body onto the path — with
    /// exactly the `(vertex, stack hash)` state keys a vertex-by-vertex
    /// walk would have inserted — and recurses once from the caller-side
    /// receiver, with the stack unchanged (the `Enter`/`Exit` pair
    /// cancels). Consumes **zero** DFS steps for the body; the replayed
    /// path is byte-identical to an uncollapsed traversal.
    fn traverse_chain(
        &mut self,
        path: &mut DependencePath,
        stack: &mut CallStack,
        chain: &SummaryChain,
    ) {
        let n = chain.body.len();
        let h_orig = stack.hash();
        let h_in = mix_site(h_orig, chain.site);
        // Insert the body's DFS states one by one; any collision means
        // the vertex-by-vertex walk would have been cut off at that point
        // (and, the corridor being silent, recorded nothing) — roll back
        // and skip the whole chain. Rolled-back elements all carry
        // `h_in`: a failure at index i < n leaves only indices < i ≤ n-1
        // inserted, and only the last body element (the receiver) uses
        // `h_orig`.
        for (i, &(_, v)) in chain.body.iter().enumerate() {
            let h = if i + 1 == n { h_orig } else { h_in };
            if !self.states.insert((v, h)) {
                for &(_, u) in &chain.body[..i] {
                    self.states.remove(&(u, h_in));
                }
                return;
            }
        }
        self.max_states = self.max_states.max(self.states.len());
        for &(link, v) in &chain.body {
            path.push(link, v);
        }
        self.explore(path, stack);
        for _ in 0..n {
            path.nodes.pop();
            path.links.pop();
        }
        for (i, &(_, v)) in chain.body.iter().enumerate() {
            let h = if i + 1 == n { h_orig } else { h_in };
            self.states.remove(&(v, h));
        }
    }

    /// Steps to `v` (with the stack already updated), recurses, and
    /// undoes the step. Returns without recursing if the (vertex, stack)
    /// state already occurs on the current path.
    fn step(&mut self, path: &mut DependencePath, stack: &mut CallStack, link: Link, v: Vertex) {
        let state = (v, stack.hash());
        if !self.states.insert(state) {
            return; // a cycle in DFS state space
        }
        self.max_states = self.max_states.max(self.states.len());
        path.push(link, v);
        self.explore(path, stack);
        path.nodes.pop();
        path.links.pop();
        self.states.remove(&state);
    }

    fn explore(&mut self, path: &mut DependencePath, stack: &mut CallStack) {
        if self.steps >= self.opts.max_steps_per_source
            || path.nodes.len() >= self.opts.max_path_len
        {
            return;
        }
        self.steps += 1;
        let at = path.sink();
        let targets = self.pdg.flow_targets(self.program, at);
        for target in targets {
            match target {
                FlowTarget::Local { to, operand } => {
                    let func = self.program.func(at.func);
                    if !self.checker.propagates_through(func, to, operand)
                        || !self.checker.keeps_fact(func, to)
                    {
                        continue;
                    }
                    let v = Vertex::new(at.func, to);
                    if !self.live(v) {
                        continue; // pruned: on no source→sink chain
                    }
                    self.step(path, stack, Link::Local, v);
                }
                FlowTarget::IntoCallee {
                    site,
                    callee,
                    param,
                } => {
                    if stack.len() >= self.opts.max_call_depth {
                        continue;
                    }
                    let entry = Vertex::new(callee, param);
                    if !self.live(entry) {
                        continue; // pruned: the callee corridor is dead
                    }
                    if let Some(chain) = self
                        .compact
                        .and_then(|c| c.chain(self.checker_id, site, param))
                    {
                        self.traverse_chain(path, stack, chain);
                        continue;
                    }
                    stack.push(site);
                    self.step(path, stack, Link::Enter(site), entry);
                    stack.pop();
                }
                FlowTarget::BackToCaller { site, caller, dst } => {
                    let v = Vertex::new(caller, dst);
                    if !self.live(v) {
                        continue; // pruned: the caller side is dead
                    }
                    // CFL discipline: match the entering site, or escape
                    // upward with an empty stack.
                    let popped = match stack.last() {
                        Some(top) if top == site => {
                            stack.pop();
                            true
                        }
                        Some(_) => continue, // mismatched parenthesis
                        None => false,       // upward escape
                    };
                    self.step(path, stack, Link::Exit(site), v);
                    if popped {
                        stack.push(site);
                    }
                }
                FlowTarget::ThroughExtern { to, arg: _, .. } => {
                    let func = self.program.func(at.func);
                    let sink_here = self.checker.is_sink(self.program, func, to);
                    if sink_here {
                        self.record(path, Vertex::new(at.func, to));
                    }
                    // Sanitizers kill the fact; other externs pass it
                    // through (taint only).
                    if self.checker.through_extern
                        && !sink_here
                        && !self.checker.is_sanitizer(self.program, func, to)
                    {
                        let v = Vertex::new(at.func, to);
                        if !self.live(v) {
                            continue; // pruned
                        }
                        self.step(path, stack, Link::Local, v);
                    }
                }
            }
        }
    }
}

/// The checker's source vertices in canonical order (function order,
/// then definition order) — the unit of work the discovery shards steal.
pub fn source_vertices(program: &Program, checker: &Checker) -> Vec<Vertex> {
    let mut sources = Vec::new();
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        for def in &func.defs {
            if checker.is_source(program, func, def.var) {
                sources.push(Vertex::new(func.id, def.var));
            }
        }
    }
    sources
}

/// The fused multi-client work list: every `(checker, source)` pair in
/// canonical order — checkers in [`CheckerSet`] order, then that
/// checker's sources in [`source_vertices`] order. This is the unit of
/// work the fused discovery shards (and the streaming producers) steal;
/// merging per-item results back in item order keeps the fused pass
/// byte-deterministic at any shard count.
pub fn multi_source_vertices(program: &Program, set: &CheckerSet) -> Vec<(CheckerId, Vertex)> {
    let mut items = Vec::new();
    for (id, checker) in set.iter() {
        for v in source_vertices(program, checker) {
            items.push((id, v));
        }
    }
    items
}

/// One source's worth of discovery — the unit of work the streaming
/// pipeline's producer shards run and push downstream.
#[derive(Debug)]
pub struct SourceDiscovery {
    /// Candidates found from this source, in DFS order.
    pub candidates: Vec<Candidate>,
    /// DFS steps taken.
    pub steps: u64,
    /// Transient visited-set high-water bytes (charge/release through
    /// the shard's accountant).
    pub state_bytes: u64,
}

/// Runs the DFS for a single `(checker, source)` work item (one element
/// of [`multi_source_vertices`]); every recorded candidate is stamped
/// with `id`. The concatenation of results in work-item order is exactly
/// [`discover_all_multi`]'s output.
pub fn discover_source_for(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    id: CheckerId,
    opts: &PropagateOptions,
    source: Vertex,
) -> SourceDiscovery {
    discover_source_for_compact(program, pdg, checker, id, opts, source, None)
}

/// [`discover_source_for`] with an optional compacted PDG view: dead
/// sources are skipped outright (a source whose liveness pruning removed
/// it reaches no sink, so the DFS would burn ≥ 1 step recording
/// nothing), live exploration never steps onto pruned vertices, and
/// collapsed summary chains are replayed as composite edges. Reports are
/// byte-identical to the uncompacted walk whenever the step/path budgets
/// do not bind; steps only ever shrink.
pub fn discover_source_for_compact(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    id: CheckerId,
    opts: &PropagateOptions,
    source: Vertex,
    compact: Option<&CompactPdg>,
) -> SourceDiscovery {
    if let Some(c) = compact {
        if !c.is_live(id, source) {
            return SourceDiscovery {
                candidates: Vec::new(),
                steps: 0,
                state_bytes: 0,
            };
        }
    }
    let mut dfs = Dfs::new(program, pdg, checker, id, compact, *opts);
    let mut path = DependencePath::unit(source);
    let mut stack = CallStack::new();
    dfs.explore(&mut path, &mut stack);
    SourceDiscovery {
        state_bytes: dfs.max_states as u64 * BYTES_PER_DFS_STATE,
        steps: dfs.steps as u64,
        candidates: dfs.candidates,
    }
}

/// Single-checker convenience wrapper over [`discover_source_for`]
/// (candidates tagged [`CheckerId`]`(0)`, i.e. a singleton set).
pub fn discover_source(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    opts: &PropagateOptions,
    source: Vertex,
) -> SourceDiscovery {
    discover_source_for(program, pdg, checker, CheckerId(0), opts, source)
}

/// The result of a (possibly sharded) discovery pass.
#[derive(Debug, Default)]
pub struct Discovery {
    /// All candidates, in the canonical sequential order (work-item
    /// order `(checker_idx, source_idx)`, then DFS order within a
    /// source) regardless of shard count.
    pub candidates: Vec<Candidate>,
    /// Total DFS steps across all work items.
    pub steps: u64,
    /// DFS steps attributed per checker (indexed by `CheckerId.0`).
    pub per_checker_steps: Vec<u64>,
    /// How many shards actually ran.
    pub shards: usize,
    /// One accountant per shard, tracking transient visited-set bytes
    /// (charged while a source is being explored, released after). Fold
    /// these into [`crate::memory::run_accounting`] with
    /// `add_concurrent` so 1-shard peaks equal the sequential driver's.
    pub memory: Vec<MemoryAccountant>,
}

/// Runs sparse propagation for a whole [`CheckerSet`] in **one fused
/// pass** across `shards` worker threads. The work list is every
/// `(checker, source)` pair ([`multi_source_vertices`]); shards steal
/// items off an atomic cursor and the per-item results are merged back
/// in canonical `(checker_idx, source_idx)` order, so the output is
/// **byte-identical to the sequential run** (`shards == 1`) at any
/// shard count, and the per-checker candidate subsequence is exactly
/// what a single-checker [`discover_all`] over that checker produces.
pub fn discover_all_multi(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    opts: &PropagateOptions,
    shards: usize,
) -> Discovery {
    discover_all_multi_compact(program, pdg, set, opts, shards, None)
}

/// [`discover_all_multi`] with an optional compacted PDG view (see
/// [`discover_source_for_compact`] for the per-source semantics). The
/// deterministic merge is untouched: the compaction is a pure per-item
/// filter, so the output stays byte-identical at any shard count.
pub fn discover_all_multi_compact(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    opts: &PropagateOptions,
    shards: usize,
    compact: Option<&CompactPdg>,
) -> Discovery {
    let items = multi_source_vertices(program, set);
    let mut shards = shards.clamp(1, items.len().max(1));
    // Small-program fallback: below the work-size threshold the thread
    // spawn + merge overhead dominates the DFS, so discover sequentially
    // (byte-identical output; `discovery_prop.rs` pins the equivalence).
    if opts.sequential_discovery_threshold != 0 && items.len() < opts.sequential_discovery_threshold
    {
        shards = 1;
    }
    if shards <= 1 {
        let mut acct = MemoryAccountant::new();
        let mut candidates = Vec::new();
        let mut steps = 0u64;
        let mut per_checker_steps = vec![0u64; set.len()];
        for &(id, src) in &items {
            let d = discover_source_for_compact(program, pdg, set.get(id), id, opts, src, compact);
            acct.charge(Category::Graph, d.state_bytes);
            acct.release(Category::Graph, d.state_bytes);
            steps += d.steps;
            per_checker_steps[id.0] += d.steps;
            candidates.extend(d.candidates);
        }
        return Discovery {
            candidates,
            steps,
            per_checker_steps,
            shards: 1,
            memory: vec![acct],
        };
    }

    // Sharded: shards steal (checker, source) items off an atomic
    // cursor; every item's output is tagged with its index so the merge
    // is deterministic.
    let cursor = AtomicUsize::new(0);
    let per_item: Mutex<Vec<(usize, Vec<Candidate>, u64)>> =
        Mutex::new(Vec::with_capacity(items.len()));
    let accountants: Mutex<Vec<MemoryAccountant>> = Mutex::new(Vec::with_capacity(shards));
    std::thread::scope(|scope| {
        for _ in 0..shards {
            scope.spawn(|| {
                let mut acct = MemoryAccountant::new();
                let mut local: Vec<(usize, Vec<Candidate>, u64)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let (id, src) = items[i];
                    let d = discover_source_for_compact(
                        program,
                        pdg,
                        set.get(id),
                        id,
                        opts,
                        src,
                        compact,
                    );
                    acct.charge(Category::Graph, d.state_bytes);
                    acct.release(Category::Graph, d.state_bytes);
                    local.push((i, d.candidates, d.steps));
                }
                per_item.lock().unwrap().extend(local);
                accountants.lock().unwrap().push(acct);
            });
        }
    });
    let mut per_item = per_item.into_inner().unwrap();
    per_item.sort_by_key(|(i, _, _)| *i);
    let mut candidates = Vec::new();
    let mut steps = 0u64;
    let mut per_checker_steps = vec![0u64; set.len()];
    for (i, cs, st) in per_item {
        candidates.extend(cs);
        steps += st;
        per_checker_steps[items[i].0 .0] += st;
    }
    Discovery {
        candidates,
        steps,
        per_checker_steps,
        shards,
        memory: accountants.into_inner().unwrap(),
    }
}

/// Runs sparse propagation for one checker across `shards` worker
/// threads — a thin wrapper over [`discover_all_multi`] with a
/// singleton [`CheckerSet`] (all candidates tagged [`CheckerId`]`(0)`).
pub fn discover_all(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    opts: &PropagateOptions,
    shards: usize,
) -> Discovery {
    discover_all_multi(
        program,
        pdg,
        &CheckerSet::single(checker.clone()),
        opts,
        shards,
    )
}

/// Runs sparse propagation for one checker, returning all (source, sink)
/// candidates with their dependence paths.
pub fn discover(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    opts: &PropagateOptions,
) -> Vec<Candidate> {
    discover_all(program, pdg, checker, opts, 1).candidates
}

// ---------------------------------------------------------------------
// Reference implementation (pre-optimization), kept as the proptest
// oracle: linear candidate scan in `record`, `Vec`-scan cycle states
// with a full stack clone per step.
// ---------------------------------------------------------------------

struct RefDfs<'a> {
    program: &'a Program,
    pdg: &'a Pdg,
    checker: &'a Checker,
    opts: PropagateOptions,
    steps: usize,
    candidates: Vec<Candidate>,
    states: Vec<(Vertex, Vec<CallSiteId>)>,
}

impl<'a> RefDfs<'a> {
    fn record(&mut self, path: &DependencePath, sink: Vertex) {
        let mut full = path.clone();
        full.push(Link::Local, sink);
        debug_assert!(full.is_realizable());
        let source = full.source();
        if let Some(c) = self
            .candidates
            .iter_mut()
            .find(|c| c.source == source && c.sink == sink)
        {
            if c.paths.len() < self.opts.max_paths_per_pair {
                c.paths.push(full);
            }
        } else {
            self.candidates.push(Candidate {
                checker: CheckerId(0),
                source,
                sink,
                paths: vec![full],
            });
        }
    }

    fn step(
        &mut self,
        path: &mut DependencePath,
        stack: &mut Vec<CallSiteId>,
        link: Link,
        v: Vertex,
    ) {
        let state = (v, stack.clone());
        if self.states.contains(&state) {
            return;
        }
        self.states.push(state);
        path.push(link, v);
        self.explore(path, stack);
        path.nodes.pop();
        path.links.pop();
        self.states.pop();
    }

    fn explore(&mut self, path: &mut DependencePath, stack: &mut Vec<CallSiteId>) {
        if self.steps >= self.opts.max_steps_per_source
            || path.nodes.len() >= self.opts.max_path_len
        {
            return;
        }
        self.steps += 1;
        let at = path.sink();
        let targets = self.pdg.flow_targets(self.program, at);
        for target in targets {
            match target {
                FlowTarget::Local { to, operand } => {
                    let func = self.program.func(at.func);
                    if !self.checker.propagates_through(func, to, operand)
                        || !self.checker.keeps_fact(func, to)
                    {
                        continue;
                    }
                    self.step(path, stack, Link::Local, Vertex::new(at.func, to));
                }
                FlowTarget::IntoCallee {
                    site,
                    callee,
                    param,
                } => {
                    if stack.len() >= self.opts.max_call_depth {
                        continue;
                    }
                    stack.push(site);
                    self.step(path, stack, Link::Enter(site), Vertex::new(callee, param));
                    stack.pop();
                }
                FlowTarget::BackToCaller { site, caller, dst } => {
                    let popped = match stack.last() {
                        Some(&top) if top == site => {
                            stack.pop();
                            true
                        }
                        Some(_) => continue,
                        None => false,
                    };
                    self.step(path, stack, Link::Exit(site), Vertex::new(caller, dst));
                    if popped {
                        stack.push(site);
                    }
                }
                FlowTarget::ThroughExtern { to, arg: _, .. } => {
                    let func = self.program.func(at.func);
                    let sink_here = self.checker.is_sink(self.program, func, to);
                    if sink_here {
                        self.record(path, Vertex::new(at.func, to));
                    }
                    if self.checker.through_extern
                        && !sink_here
                        && !self.checker.is_sanitizer(self.program, func, to)
                    {
                        self.step(path, stack, Link::Local, Vertex::new(at.func, to));
                    }
                }
            }
        }
    }
}

/// The original, pre-optimization discovery: linear candidate scan and
/// `Vec`-scan cycle detection with a stack clone per step. Quadratic in
/// the hot loops; kept only as the oracle the optimized [`discover`] is
/// property-tested against (`tests/discovery_prop.rs`).
pub fn discover_reference(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    opts: &PropagateOptions,
) -> Vec<Candidate> {
    let mut all = Vec::new();
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        for def in &func.defs {
            if !checker.is_source(program, func, def.var) {
                continue;
            }
            let mut dfs = RefDfs {
                program,
                pdg,
                checker,
                opts: *opts,
                steps: 0,
                candidates: Vec::new(),
                states: Vec::new(),
            };
            let mut path = DependencePath::unit(Vertex::new(func.id, def.var));
            let mut stack = Vec::new();
            dfs.explore(&mut path, &mut stack);
            all.extend(dfs.candidates);
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use fusion_ir::{compile, CompileOptions};

    fn candidates(src: &str, checker: &Checker) -> (Program, Vec<Candidate>) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let cs = discover(&p, &g, checker, &PropagateOptions::default());
        (p, cs)
    }

    #[test]
    fn direct_null_flow() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].paths.len(), 1);
        assert_eq!(cs[0].paths[0].nodes.len(), 2);
    }

    #[test]
    fn null_does_not_survive_arithmetic() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; let r = q + 1; deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert!(cs.is_empty());
    }

    #[test]
    fn sanitizers_kill_taint() {
        let (_, cs) = candidates(
            "extern fn gets(); extern fn realpath(x); extern fn fopen(p);\n\
             fn f() { let i = gets(); let clean = realpath(i); fopen(clean); return 0; }",
            &Checker::cwe23(),
        );
        assert!(cs.is_empty(), "sanitized flow must not be reported");
    }

    #[test]
    fn taint_survives_arithmetic_and_library() {
        let (_, cs) = candidates(
            "extern fn gets(); extern fn sanitize_noop(x); extern fn fopen(p);\n\
             fn f() { let i = gets(); let j = i + 1; let k = sanitize_noop(j); fopen(k); return 0; }",
            &Checker::cwe23(),
        );
        assert_eq!(cs.len(), 1);
        // gets → j → k → fopen.
        assert_eq!(cs[0].paths[0].nodes.len(), 4);
    }

    #[test]
    fn interprocedural_flow_via_call_and_return() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f() { let q = null; let r = id(q); deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        let path = &cs[0].paths[0];
        assert!(path.is_realizable());
        assert!(path.links.iter().any(|l| matches!(l, Link::Enter(_))));
        assert!(path.links.iter().any(|l| matches!(l, Link::Exit(_))));
    }

    #[test]
    fn cfl_discipline_blocks_site_mixing() {
        // null enters id at site 1 but must not exit through site 2.
        let (p, cs) = candidates(
            "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f(a) {\n\
               let q = null;\n\
               let r1 = id(q);\n\
               let r2 = id(a);\n\
               deref(r2);\n\
               return r1;\n\
             }",
            &Checker::null_deref(),
        );
        // The only sink is deref(r2), which the null value cannot reach
        // without mixing call sites.
        assert!(
            cs.is_empty(),
            "{:?}",
            cs.iter().map(|c| c.paths.len()).collect::<Vec<_>>()
        );
        drop(p);
    }

    #[test]
    fn upward_escape_to_caller() {
        // The source lives in the callee, the sink in the caller.
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn make() { let q = null; return q; }\n\
             fn f() { let r = make(); deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        assert!(cs[0].paths[0]
            .links
            .iter()
            .any(|l| matches!(l, Link::Exit(_))));
    }

    #[test]
    fn multiple_alternative_paths() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn f(a, b) {\n\
               let q = null;\n\
               let r = 0;\n\
               let s = 0;\n\
               if (a) { r = q; }\n\
               if (b) { s = q; }\n\
               let t = 0;\n\
               if (a < b) { t = r; } else { t = s; }\n\
               deref(t);\n\
               return 0;\n\
             }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        // q reaches deref both via r (then-arm) and via s (else-arm).
        assert_eq!(cs[0].paths.len(), 2);
    }

    #[test]
    fn sources_in_different_functions() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn g() { let q = null; deref(q); return 0; }\n\
             fn h() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn respects_step_budget() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        // With a zero budget nothing is found.
        let p = compile(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let g = Pdg::build(&p);
        let opts = PropagateOptions {
            max_steps_per_source: 0,
            ..Default::default()
        };
        assert!(discover(&p, &g, &Checker::null_deref(), &opts).is_empty());
    }

    /// The recursion-heavy shape where (vertex, stack) states matter:
    /// the optimized hashed states must agree with the linear oracle.
    #[test]
    fn hashed_discovery_matches_reference() {
        let src = "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn twice(y) { let m = id(y); let n = id(m); return n; }\n\
             fn f(a, b) {\n\
               let q = null;\n\
               let r = twice(q);\n\
               let s = id(r);\n\
               if (a < b) { deref(s); }\n\
               deref(r);\n\
               return 0;\n\
             }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = PropagateOptions::default();
        let new = discover(&p, &g, &Checker::null_deref(), &opts);
        let old = discover_reference(&p, &g, &Checker::null_deref(), &opts);
        assert_eq!(new.len(), old.len());
        for (n, o) in new.iter().zip(&old) {
            assert_eq!(n.source, o.source);
            assert_eq!(n.sink, o.sink);
            let np: Vec<_> = n.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
            let op: Vec<_> = o.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
            assert_eq!(np, op);
        }
    }

    /// Sharded discovery must merge back into sequential order exactly.
    #[test]
    fn sharded_discovery_is_deterministic() {
        let mut src = String::from("extern fn getpass(); extern fn sendmsg(x);\n");
        for i in 0..6 {
            src.push_str(&format!(
                "fn f{i}(c) {{ let a = getpass(); let b = a + 0; \
                 if (c > {i}) {{ sendmsg(b); }} sendmsg(a); return 0; }}\n"
            ));
        }
        let p = compile(&src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = PropagateOptions::default();
        let seq = discover_all(&p, &g, &Checker::cwe402(), &opts, 1);
        assert!(!seq.candidates.is_empty());
        assert!(seq.steps > 0);
        for shards in 2..=8 {
            let sharded = discover_all(&p, &g, &Checker::cwe402(), &opts, shards);
            assert_eq!(sharded.candidates.len(), seq.candidates.len());
            assert_eq!(sharded.steps, seq.steps, "step total at {shards} shards");
            for (a, b) in sharded.candidates.iter().zip(&seq.candidates) {
                assert_eq!(a.source, b.source, "shards={shards}");
                assert_eq!(a.sink, b.sink, "shards={shards}");
                let ap: Vec<_> = a.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
                let bp: Vec<_> = b.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
                assert_eq!(ap, bp, "shards={shards}");
            }
            // Transient DFS bytes were charged and released on every shard.
            for acct in &sharded.memory {
                assert_eq!(acct.current(Category::Graph), 0);
            }
        }
    }

    /// Compacted discovery must be byte-identical to the plain walk —
    /// same candidates, same paths — while taking strictly fewer steps
    /// (dead flows are pruned, identity corridors replay as chains).
    #[test]
    fn compacted_discovery_is_byte_identical_and_cheaper() {
        use crate::checkers::CheckerSet;
        let src = "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn dead(y) { let z = y + 1; let w = z * 2; return w; }\n\
             fn f(c) {\n\
               let q = null;\n\
               let r = id(q);\n\
               let n = dead(c);\n\
               if (c > n) { deref(r); }\n\
               return 0;\n\
             }\n\
             fn g() { let q = null; let u = id(id(q)); deref(u); return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = PropagateOptions::default();
        let set = CheckerSet::single(Checker::null_deref());
        let plain = discover_all_multi(&p, &g, &set, &opts, 1);
        let compact = CompactPdg::build(&p, &g, &set, &opts);
        assert!(compact.stats().vertices_pruned > 0);
        assert!(compact.stats().chains_collapsed > 0);
        for shards in 1..=4 {
            let c = discover_all_multi_compact(&p, &g, &set, &opts, shards, Some(&compact));
            assert_eq!(c.candidates.len(), plain.candidates.len());
            for (a, b) in c.candidates.iter().zip(&plain.candidates) {
                assert_eq!(a.checker, b.checker);
                assert_eq!(a.source, b.source);
                assert_eq!(a.sink, b.sink);
                let ap: Vec<_> = a.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
                let bp: Vec<_> = b.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
                assert_eq!(ap, bp, "shards={shards}");
            }
            assert!(
                c.steps < plain.steps,
                "compacted steps {} must undercut plain {}",
                c.steps,
                plain.steps
            );
        }
    }

    /// A program that exercises all three default checkers at once.
    fn multi_program() -> (Program, Pdg) {
        let src = "extern fn deref(p); extern fn gets(); extern fn fopen(x);\n\
             extern fn getpass(); extern fn sendmsg(y);\n\
             fn a() { let q = null; deref(q); return 0; }\n\
             fn b() { let t = gets(); fopen(t); return 0; }\n\
             fn c() { let s = getpass(); sendmsg(s); return 0; }\n";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        (p, g)
    }

    /// The fused pass is the concatenation of per-checker passes in
    /// checker order, with every candidate tagged by its client.
    #[test]
    fn fused_discovery_is_checker_major_concatenation() {
        use crate::checkers::CheckerSet;
        let (p, g) = multi_program();
        let opts = PropagateOptions::default();
        let set = CheckerSet::all();
        let fused = discover_all_multi(&p, &g, &set, &opts, 1);
        assert_eq!(fused.per_checker_steps.len(), set.len());
        assert_eq!(fused.per_checker_steps.iter().sum::<u64>(), fused.steps);

        let mut expected = Vec::new();
        for (id, checker) in set.iter() {
            let single = discover_all(&p, &g, checker, &opts, 1);
            assert_eq!(
                fused.per_checker_steps[id.0], single.steps,
                "per-checker step attribution for {id}"
            );
            for mut c in single.candidates {
                c.checker = id; // single-checker passes tag CheckerId(0)
                expected.push(c);
            }
        }
        assert_eq!(fused.candidates.len(), expected.len());
        for (f, e) in fused.candidates.iter().zip(&expected) {
            assert_eq!(f.checker, e.checker);
            assert_eq!(f.source, e.source);
            assert_eq!(f.sink, e.sink);
            let fp: Vec<_> = f.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
            let ep: Vec<_> = e.paths.iter().map(|p| (&p.nodes, &p.links)).collect();
            assert_eq!(fp, ep);
        }
    }

    /// Sharded fused discovery merges back into the canonical
    /// `(checker_idx, source_idx)` order exactly.
    #[test]
    fn sharded_multi_discovery_is_deterministic() {
        use crate::checkers::CheckerSet;
        let (p, g) = multi_program();
        let opts = PropagateOptions::default();
        let set = CheckerSet::all();
        let seq = discover_all_multi(&p, &g, &set, &opts, 1);
        assert!(seq.candidates.len() >= 3);
        for shards in 2..=8 {
            let sharded = discover_all_multi(&p, &g, &set, &opts, shards);
            assert_eq!(sharded.steps, seq.steps, "shards={shards}");
            assert_eq!(
                sharded.per_checker_steps, seq.per_checker_steps,
                "shards={shards}"
            );
            assert_eq!(sharded.candidates.len(), seq.candidates.len());
            for (a, b) in sharded.candidates.iter().zip(&seq.candidates) {
                assert_eq!(a.checker, b.checker, "shards={shards}");
                assert_eq!(a.source, b.source, "shards={shards}");
                assert_eq!(a.sink, b.sink, "shards={shards}");
            }
            for acct in &sharded.memory {
                assert_eq!(acct.current(Category::Graph), 0);
            }
        }
    }
}

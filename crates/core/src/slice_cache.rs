//! A sharded, LRU-bounded memo of slice **closures**.
//!
//! Every feasibility query needs the backward data-dependence closure of
//! its path set (`compute_closure`, Rules 2–3) before the engine can
//! build definitional equations. Without memoization the closure is
//! recomputed from scratch per query — even for the alternative paths
//! of one candidate, and even when two candidates in a sink group share
//! their entire dependence structure. [`SliceCache`] memoizes the
//! closure under the same canonical content hash the verdict cache uses
//! ([`crate::cache::path_set_key`]), shared across alternative paths,
//! candidates, worker engines, runs — and, in the fused multi-client
//! pass, across *checkers*: the key is purely content-based (no
//! [`CheckerId`][crate::checkers::CheckerId]), so when two checkers
//! query overlapping dependence structure on the same sink, the second
//! client reuses the closure the first one computed.
//!
//! **Why this is not condition caching.** The paper's fused design
//! (§3.2.2) forbids caching *path conditions*: conditions are
//! context-dependent formulas whose reuse forces cloning. A closure is
//! neither — it is a set of program vertices (dependence structure and
//! transfer-function membership, `BTreeMap<FuncId, FuncSlice>`), a pure
//! function of the path set with no formulas, no solver state, and no
//! contexts baked in. The per-query constraints (Rules 1 and 5) are
//! *always* recomputed from the concrete path
//! (`fusion_pdg::slice::constraints_for`); only the structure they are
//! interpreted over is shared.
//!
//! Mechanically the cache mirrors [`crate::cache::VerdictCache`]:
//! lock-striped shards keyed by content hash, lock-free counters, bytes
//! observable for [`crate::memory::Category::Cache`] accounting — plus
//! an LRU bound per shard (like the solver's `local_cache`) so retained
//! closures cannot grow without limit.

use crate::cache::Key128;
use fusion_ir::ssa::FuncId;
use fusion_pdg::slice::FuncSlice;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memoizable slice closure: the per-function vertex sets of `V[Π]`.
pub type Closure = BTreeMap<FuncId, FuncSlice>;

/// Fixed overhead per retained closure (key, Arc, table slot, tick).
pub const BYTES_PER_CLOSURE_ENTRY: u64 = 96;
/// Estimated bytes per sliced vertex or entry site inside a closure.
pub const BYTES_PER_CLOSURE_ITEM: u64 = 16;
/// Estimated bytes per function bucket inside a closure.
pub const BYTES_PER_CLOSURE_FUNC: u64 = 48;

/// Estimated resident bytes of one closure, used for cache accounting.
pub fn closure_bytes(c: &Closure) -> u64 {
    let items: u64 = c
        .values()
        .map(|f| (f.verts.len() + f.entry_sites.len()) as u64)
        .sum();
    BYTES_PER_CLOSURE_ENTRY
        + c.len() as u64 * BYTES_PER_CLOSURE_FUNC
        + items * BYTES_PER_CLOSURE_ITEM
}

/// Monotonic counters plus retention at observation time; two snapshots
/// subtract via [`SliceCacheStats::since`] to scope numbers to one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceCacheStats {
    /// Closure requests answered from the cache.
    pub hits: u64,
    /// Closure requests that had to compute.
    pub misses: u64,
    /// Closures stored.
    pub inserts: u64,
    /// Closures evicted by the LRU bound.
    pub evictions: u64,
    /// Closures retained at observation time.
    pub entries: u64,
    /// Estimated retained bytes at observation time.
    pub bytes: u64,
}

impl SliceCacheStats {
    /// Counter deltas relative to an `earlier` snapshot of the same
    /// cache; `entries`/`bytes` stay absolute.
    pub fn since(&self, earlier: &SliceCacheStats) -> SliceCacheStats {
        SliceCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
            bytes: self.bytes,
        }
    }

    /// Hit rate in `[0, 1]` (0 when no requests were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Shard {
    /// key → (closure, last-use tick, estimated bytes).
    map: HashMap<Key128, (Arc<Closure>, u64, u64)>,
    tick: u64,
}

/// The sharded LRU closure memo. All methods take `&self`; share it by
/// reference or `Arc` across worker engines and runs.
#[derive(Debug)]
pub struct SliceCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum retained closures per shard; least-recently-used entries
    /// are evicted beyond this.
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

const DEFAULT_SHARDS: usize = 16;
/// Default total closure capacity (across shards), matching the
/// solver's `local_cache_cap` order of magnitude.
pub const DEFAULT_CAPACITY: usize = 1024;

impl Default for SliceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SliceCache {
    /// A cache with the default shard count and total capacity.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }

    /// A cache with `shards` lock stripes and `capacity` total retained
    /// closures (both rounded up to at least 1 / 1-per-shard).
    pub fn with_config(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let cap_per_shard = capacity.div_ceil(shards).max(1);
        SliceCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            cap_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Key128) -> &Mutex<Shard> {
        &self.shards[(key.lo as usize) % self.shards.len()]
    }

    /// Looks up a closure, counting a hit or miss and refreshing the
    /// entry's LRU tick on hit.
    pub fn get(&self, key: Key128) -> Option<Arc<Closure>> {
        let mut shard = self.shard(key).lock().expect("slice cache poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some((closure, last_use, _)) => {
                *last_use = tick;
                let c = Arc::clone(closure);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(c)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a closure, evicting least-recently-used entries past the
    /// per-shard capacity. Re-inserting an existing key only refreshes
    /// its tick.
    pub fn insert(&self, key: Key128, closure: Arc<Closure>) {
        let bytes = closure_bytes(&closure);
        let mut shard = self.shard(key).lock().expect("slice cache poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.1 = tick;
            return;
        }
        shard.map.insert(key, (closure, tick, bytes));
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        while shard.map.len() > self.cap_per_shard {
            let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, (_, t, _))| *t) else {
                break;
            };
            let (_, _, freed) = shard.map.remove(&victim).expect("victim present");
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evicts every retained closure that *spans* a dirty function —
    /// i.e. whose `BTreeMap<FuncId, FuncSlice>` contains a function
    /// flagged in `dirty` — and returns how many were removed.
    ///
    /// This is the incremental-rescan invalidation hook
    /// ([`crate::incremental`]), and it is **correctness-critical**, not
    /// garbage collection: the cache key ([`crate::cache::path_set_key`])
    /// hashes only the *on-path* content of a query, while the memoized
    /// closure also contains off-path definitions (e.g. the defining
    /// expressions of guards) of every spanned function. Editing a
    /// spanned function can therefore change the correct closure without
    /// changing the key. Conversely a closure spanning no dirty function
    /// is bit-identical to what a cold computation over the edited
    /// program produces — closure equations only ever consult the
    /// spanned functions' own definition arrays — so retaining it is
    /// exact. No provenance side-table is needed: the closure *is* its
    /// own function-span record.
    pub fn evict_dirty(&self, dirty: &[bool]) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("slice cache poisoned");
            let victims: Vec<Key128> = shard
                .map
                .iter()
                .filter(|(_, (closure, _, _))| {
                    closure
                        .keys()
                        .any(|f| dirty.get(f.index()).copied().unwrap_or(true))
                })
                .map(|(&k, _)| k)
                .collect();
            for key in victims {
                let (_, _, freed) = shard.map.remove(&key).expect("victim present");
                self.bytes.fetch_sub(freed, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                removed += 1;
            }
        }
        removed
    }

    /// Total retained closures across shards.
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("slice cache poisoned").map.len() as u64)
            .sum()
    }

    /// Whether the cache holds no closures.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated retained bytes (lock-free observation).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot of the counters and retention.
    pub fn stats(&self) -> SliceCacheStats {
        SliceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A distinct, hand-built test key per index.
    fn k(n: u64) -> Key128 {
        Key128::from_parts(n, !n)
    }

    fn closure(n: usize) -> Arc<Closure> {
        let mut c = Closure::new();
        let fs = FuncSlice {
            verts: (0..n as u32).map(fusion_ir::ssa::VarId).collect(),
            entry_sites: BTreeSet::new(),
        };
        c.insert(FuncId(0), fs);
        Arc::new(c)
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = SliceCache::with_config(2, 8);
        assert!(cache.get(k(1)).is_none());
        cache.insert(k(1), closure(3));
        let hit = cache.get(k(1)).expect("hit");
        assert_eq!(hit[&FuncId(0)].verts.len(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, closure_bytes(&closure(3)));
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn reinsert_refreshes_without_double_count() {
        let cache = SliceCache::with_config(1, 8);
        cache.insert(k(5), closure(2));
        cache.insert(k(5), closure(2));
        let s = cache.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, closure_bytes(&closure(2)));
    }

    #[test]
    fn lru_evicts_least_recent_and_releases_bytes() {
        let cache = SliceCache::with_config(1, 2);
        cache.insert(k(1), closure(1));
        cache.insert(k(2), closure(1));
        let _ = cache.get(k(1)); // 1 is now the most recent
        cache.insert(k(3), closure(1)); // evicts 2
        assert!(cache.get(k(1)).is_some());
        assert!(cache.get(k(2)).is_none(), "LRU victim must be evicted");
        assert!(cache.get(k(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 2 * closure_bytes(&closure(1)));
    }

    #[test]
    fn since_scopes_counters() {
        let cache = SliceCache::new();
        cache.insert(k(1), closure(1));
        let _ = cache.get(k(1));
        let before = cache.stats();
        let _ = cache.get(k(1));
        let _ = cache.get(k(9));
        let d = cache.stats().since(&before);
        assert_eq!((d.hits, d.misses, d.inserts), (1, 1, 0));
    }

    #[test]
    fn concurrent_sharing() {
        let cache = SliceCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..128u64 {
                        let key = i % 16;
                        if cache.get(k(key)).is_none() {
                            cache.insert(k(key), closure(key as usize + 1));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 16);
        for key in 0..16u64 {
            let c = cache.get(k(key)).expect("retained");
            assert_eq!(c[&FuncId(0)].verts.len(), key as usize + 1);
        }
    }

    #[test]
    fn colliding_prefix_keys_do_not_alias() {
        // Same regression as the verdict cache: two keys identical in the
        // pre-widening 64-bit half must remain distinct closures.
        let a = Key128::from_parts(99, 1);
        let b = Key128::from_parts(99, 2);
        let cache = SliceCache::with_config(2, 8);
        cache.insert(a, closure(1));
        cache.insert(b, closure(5));
        assert_eq!(cache.get(a).unwrap()[&FuncId(0)].verts.len(), 1);
        assert_eq!(cache.get(b).unwrap()[&FuncId(0)].verts.len(), 5);
        assert_eq!(cache.len(), 2);
    }
}

//! # fusion-smt
//!
//! A from-scratch bit-vector SMT substrate for the Fusion reproduction
//! (Shi et al., *Path-Sensitive Sparse Analysis without Path Conditions*,
//! PLDI 2021). It plays the role Z3 4.5 plays in the paper's §4:
//!
//! * a hash-consed **term DAG** with constructor-level rewriting ([`term`]);
//! * the named **preprocessing passes** — forward/backward constant
//!   propagation, equality propagation, unconstrained-variable elimination,
//!   Gaussian elimination, strength reduction ([`preprocess`]);
//! * **bit-blasting** to CNF ([`bitblast`]) and a **CDCL SAT solver** with
//!   two-watched literals, VSIDS, 1-UIP learning, Luby restarts and phase
//!   saving ([`sat`]);
//! * the end-to-end **Algorithm 3 pipeline** with per-call budgets
//!   ([`solver`]) and its **incremental session** variant that amortizes
//!   bit-blasting and CDCL state across related queries ([`session`]);
//! * the heavyweight **tactics** the evaluation arms Pinpoint with: `qe`
//!   and `ctx-solver-simplify` ([`tactic`]).
//!
//! ## Quick start
//!
//! ```
//! use fusion_smt::term::{BvPred, Sort, TermPool};
//! use fusion_smt::solver::{smt_solve, SolverConfig};
//!
//! let mut pool = TermPool::new();
//! let x = pool.var("x", Sort::Bv(32));
//! let y = pool.var("y", Sort::Bv(32));
//! let formula = pool.pred(BvPred::Slt, x, y);
//! let (result, stats) = smt_solve(&mut pool, formula, &SolverConfig::default());
//! assert!(result.is_sat());
//! assert!(stats.preprocess_decided); // both sides unconstrained
//! ```

#![warn(missing_docs)]

pub mod bitblast;
pub mod cnf;
pub mod dimacs;
pub mod egraph;
pub mod preprocess;
pub mod sat;
pub mod session;
pub mod smtlib;
pub mod solver;
pub mod tactic;
pub mod term;

pub use egraph::{egraph_simplify, EGraphConfig, EGraphStats, ExtractorKind};
pub use session::{SessionStats, SolveSession};
pub use smtlib::to_smtlib2;
pub use solver::{smt_solve, Model, SatResult, SolveStats, SolverConfig};
pub use term::{BvOp, BvPred, Sort, TermId, TermKind, TermPool, Value, VarIdx};

//! The e-graph simplification leg must be invisible in the output.
//!
//! Equality saturation with cost-based extraction rewrites each
//! fragment's local condition into a cheaper equivalent before the
//! solver sees it — fewer bit-blasted terms, fewer CNF clauses — but it
//! may never change a verdict, a witness path, a suppression count, or
//! their order. This pins the contract end to end: for every driver
//! ({sequential, barrier, streaming}), thread count 1–8, with and
//! without the verdict cache, incremental sessions, abstract-
//! interpretation triage, and PDG compaction, the reports of an
//! egraph-on run are *byte-identical* to an egraph-off run. This is the
//! invariant `extract_bench` enforces on its corpus and the CLI's
//! `--egraph`/`--no-egraph` pair relies on.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{
    analyze_parallel_with_cache, analyze_streaming_with_cache, analyze_with_cache, AnalysisOptions,
    AnalysisRun, Feasibility, FeasibilityEngine,
};
use fusion::graph_solver::FusionSolver;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::egraph::EGraphConfig;
use fusion_smt::solver::SolverConfig;

/// Guards chosen so the e-graph has real work on the feasible *and* the
/// infeasible side: a nonlinear common subexpression (`x*(y*z)` vs
/// `(x*y)*z` — Gaussian elimination cannot touch it, only AC
/// reassociation merges the multipliers), a constant multiply the
/// shift-add decomposition rewrites, and a parity-infeasible equality
/// (`x*4 == x + x + odd` forces `x ≡ odd (mod 2)`, impossible) that
/// must stay suppressed with the pass on or off.
fn subject() -> (Program, Pdg, Checker) {
    let mut src = String::from("extern fn getpass(); extern fn sendmsg(x);\n");
    for i in 0..3 {
        src.push_str(&format!(
            "fn f{i}(x, y, z) {{\n\
               let s = getpass();\n\
               let p = x * y * z;\n\
               let q = x * (y * z);\n\
               let a = 1; let b = 1; let c = 1;\n\
               if (p + 5 == q + {k1}) {{ a = s + {i}; }}\n\
               if (x * 6 + y == {k2}) {{ b = s * 2; }}\n\
               if (x * 4 == x + x + {odd}) {{ c = s + 1; }}\n\
               sendmsg(a);\n\
               sendmsg(b);\n\
               sendmsg(c);\n\
               return 0;\n\
             }}\n",
            k1 = 5 + i,
            k2 = 77 + 2 * i,
            odd = 7 + 2 * i,
        ));
    }
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg, Checker::cwe402())
}

/// Everything that reaches the user, in a comparable form.
type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &AnalysisRun) -> Vec<ReportKey> {
    run.reports
        .iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

/// Solver config with the e-graph explicitly on or off — explicit so
/// the matrix is exercised identically under the CI leg that exports
/// `FUSION_NO_EGRAPH=1` (which only flips the *default*).
fn solver_config(egraph: bool) -> SolverConfig {
    SolverConfig {
        egraph: if egraph {
            EGraphConfig {
                enabled: true,
                ..EGraphConfig::default()
            }
        } else {
            EGraphConfig::disabled()
        },
        ..SolverConfig::default()
    }
}

fn factory(egraph: bool, incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(solver_config(egraph));
        engine.incremental = incremental;
        Box::new(engine)
    }
}

#[test]
fn egraph_on_equals_egraph_off_across_the_full_matrix() {
    let (program, pdg, checker) = subject();

    for use_cache in [false, true] {
        for incremental in [true, false] {
            for absint in [true, false] {
                for compact in [true, false] {
                    let mut opts = if use_cache {
                        AnalysisOptions::new()
                    } else {
                        AnalysisOptions::without_cache()
                    };
                    opts.absint = absint;
                    opts.compact = compact;
                    let ctx = format!(
                        "cache={use_cache} incremental={incremental} \
                         absint={absint} compact={compact}"
                    );

                    // Reference transcript: sequential, e-graph OFF.
                    let off_cache = VerdictCache::new();
                    let mut off_engine = FusionSolver::new(solver_config(false));
                    off_engine.incremental = incremental;
                    let reference = analyze_with_cache(
                        &program,
                        &pdg,
                        &checker,
                        &mut off_engine,
                        &opts,
                        use_cache.then_some(&off_cache),
                    );
                    assert!(!reference.reports.is_empty(), "subject must report ({ctx})");
                    assert!(
                        reference.suppressed > 0,
                        "subject must suppress the parity guard ({ctx})"
                    );
                    let want = keys(&reference);

                    // Sequential, e-graph ON.
                    let on_cache = VerdictCache::new();
                    let mut on_engine = FusionSolver::new(solver_config(true));
                    on_engine.incremental = incremental;
                    let on = analyze_with_cache(
                        &program,
                        &pdg,
                        &checker,
                        &mut on_engine,
                        &opts,
                        use_cache.then_some(&on_cache),
                    );
                    assert_eq!(keys(&on), want, "sequential diverged ({ctx})");
                    assert_eq!(on.suppressed, reference.suppressed, "{ctx}");
                    assert_eq!(on.candidates, reference.candidates, "{ctx}");

                    // Parallel drivers, e-graph ON, every thread count.
                    for threads in 1..=8 {
                        let stream_cache = VerdictCache::new();
                        let streaming = analyze_streaming_with_cache(
                            &program,
                            &pdg,
                            &checker,
                            &factory(true, incremental),
                            threads,
                            &opts,
                            use_cache.then_some(&stream_cache),
                        );
                        assert_eq!(
                            keys(&streaming),
                            want,
                            "streaming diverged at threads={threads} ({ctx})"
                        );
                        assert_eq!(streaming.suppressed, reference.suppressed);

                        let barrier_cache = VerdictCache::new();
                        let barrier = analyze_parallel_with_cache(
                            &program,
                            &pdg,
                            &checker,
                            &factory(true, incremental),
                            threads,
                            &opts,
                            use_cache.then_some(&barrier_cache),
                        );
                        assert_eq!(
                            keys(&barrier),
                            want,
                            "barrier diverged at threads={threads} ({ctx})"
                        );
                        assert_eq!(barrier.suppressed, reference.suppressed);
                    }
                }
            }
        }
    }
}

#[test]
fn egraph_actually_fires_on_the_subject() {
    // Guard against the matrix above passing vacuously: on this subject
    // the pass must build e-classes and apply rewrites, and the solver
    // must hand back strictly smaller preprocessed formulas than the
    // egraph-off run.
    let (program, pdg, checker) = subject();
    let opts = AnalysisOptions::without_cache();

    let mut on_engine = FusionSolver::new(solver_config(true));
    let on = analyze_with_cache(&program, &pdg, &checker, &mut on_engine, &opts, None);
    assert!(
        on.stages.egraph_classes > 0,
        "e-graph must build classes on this subject"
    );
    assert!(
        on.stages.egraph_rewrites > 0,
        "e-graph must rewrite on this subject"
    );

    let mut off_engine = FusionSolver::new(solver_config(false));
    let off = analyze_with_cache(&program, &pdg, &checker, &mut off_engine, &opts, None);
    assert_eq!(off.stages.egraph_classes, 0);
    assert_eq!(keys(&on), keys(&off));
}

//! Table 2 — evaluation subjects: size, functions, PDG vertices and edges.
//!
//! Prints the paper's numbers beside the scaled synthetic reproduction so
//! the shape (relative ordering and vertex/edge ratios) can be compared.

use fusion_bench::{banner, build_subject, scale_from_env};
use fusion_workloads::SUBJECTS;

fn main() {
    banner(
        "Table 2: subjects for evaluation",
        "paper numbers vs scaled synthetic subjects (same generator seeds as all tables)",
    );
    let scale = scale_from_env();
    println!(
        "{:>2} {:>8} | {:>8} {:>9} {:>12} {:>12} | {:>7} {:>9} {:>10} {:>10}",
        "ID",
        "program",
        "KLoC",
        "#fn",
        "#vertices",
        "#edges",
        "our#fn",
        "our#vert",
        "our#edge",
        "ratio(e/v)"
    );
    for spec in &SUBJECTS {
        let subject = build_subject(spec, scale);
        let stats = subject.pdg.stats();
        let nfuncs = subject
            .program
            .functions
            .iter()
            .filter(|f| !f.is_extern)
            .count();
        let ratio = stats.edges() as f64 / stats.vertices.max(1) as f64;
        println!(
            "{:>2} {:>8} | {:>8} {:>9} {:>12} {:>12} | {:>7} {:>9} {:>10} {:>10.2}",
            spec.id,
            spec.name,
            spec.kloc,
            spec.functions,
            spec.vertices,
            spec.edges,
            nfuncs,
            stats.vertices,
            stats.edges(),
            ratio,
        );
    }
    println!("\npaper edge/vertex ratios are ~1.2-1.35; the generator should land nearby.");
}

//! Differential property test: all feasibility engines are equivalent
//! decision procedures.
//!
//! For arbitrary generated subjects and every checker, the Fusion solver
//! (Algorithm 6), the unoptimized graph solver (Algorithm 4) and the
//! Pinpoint baseline (Algorithm 2 + 3) must return the same verdict on
//! every discovered path — they differ in cost only (§5.1: "the bugs they
//! report are the same"). Algorithm 4 serves as the pseudo-oracle: it has
//! no caching, no quick paths and no local preprocessing.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{Feasibility, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::propagate::{discover, PropagateOptions};
use fusion_baselines::PinpointEngine;
use fusion_ir::{compile_ast, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn engines_agree_on_every_path(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        let solver_cfg = SolverConfig::default();
        let mut fused = FusionSolver::new(solver_cfg);
        let mut unopt = UnoptimizedGraphSolver::new(solver_cfg);
        let mut pinpoint = PinpointEngine::new(solver_cfg);
        for checker in [Checker::null_deref(), Checker::cwe23(), Checker::cwe402()] {
            let candidates = discover(&program, &pdg, &checker, &PropagateOptions::default());
            for cand in &candidates {
                for path in &cand.paths {
                    let paths = std::slice::from_ref(path);
                    let a = fused.check_paths(&program, &pdg, paths).feasibility;
                    let b = unopt.check_paths(&program, &pdg, paths).feasibility;
                    let c = pinpoint.check_paths(&program, &pdg, paths).feasibility;
                    prop_assert_ne!(a, Feasibility::Unknown, "seed {} budget too small", seed);
                    prop_assert_eq!(a, b, "fusion vs alg4, seed {} {}", seed, checker.kind);
                    prop_assert_eq!(b, c, "alg4 vs pinpoint, seed {} {}", seed, checker.kind);
                }
            }
        }
    }

    #[test]
    fn cache_hits_never_flip_verdicts(seed in 0u64..100_000) {
        // The sharded verdict cache is keyed on path content; a hit must
        // return exactly the verdict the engine would have computed. Two
        // rounds over the same path set: round 1 fills the cache, round 2
        // hits it, and every hit is checked against a fresh engine solve.
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        let mut fused = FusionSolver::new(SolverConfig::default());
        let cache = VerdictCache::new();
        for checker in [Checker::null_deref(), Checker::cwe23(), Checker::cwe402()] {
            let candidates = discover(&program, &pdg, &checker, &PropagateOptions::default());
            for _round in 0..2 {
                for cand in &candidates {
                    for path in &cand.paths {
                        let paths = std::slice::from_ref(path);
                        let key = VerdictCache::key(&program, paths);
                        let cached = cache.get(key);
                        let v = fused.check_paths(&program, &pdg, paths).feasibility;
                        if let Some(c) = cached {
                            prop_assert_eq!(
                                c, v,
                                "cache hit flipped a verdict, seed {} {}", seed, checker.kind
                            );
                        }
                        cache.insert(key, v);
                    }
                }
            }
        }
        // Round 2 re-queried every path: hits must have occurred whenever
        // any path existed at all.
        let stats = cache.stats();
        prop_assert!(
            stats.entries == 0 || stats.hits > 0,
            "expected hits on the second round, got {:?}", stats
        );
    }
}

//! Criterion micro-benchmarks for the sparse analysis substrate:
//! compilation, PDG construction, and sparse fact propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion::checkers::Checker;
use fusion::propagate::{discover, PropagateOptions};
use fusion_bench::build_subject;
use fusion_ir::{compile_ast, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_workloads::{generate, SUBJECTS};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for &idx in &[0usize, 7, 11] {
        let spec = &SUBJECTS[idx];
        let cfg = spec.gen_config(0.002);
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut s = generate(cfg);
                compile_ast(&s.surface, &mut s.interner, CompileOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pdg_build(c: &mut Criterion) {
    let subject = build_subject(&SUBJECTS[11], 0.002); // gcc shape
    c.bench_function("pdg_build/gcc", |b| b.iter(|| Pdg::build(&subject.program)));
}

fn bench_propagation(c: &mut Criterion) {
    let subject = build_subject(&SUBJECTS[11], 0.002);
    let checker = Checker::null_deref();
    c.bench_function("sparse_propagation/gcc", |b| {
        b.iter(|| {
            discover(
                &subject.program,
                &subject.pdg,
                &checker,
                &PropagateOptions::default(),
            )
        })
    });
}

criterion_group!(benches, bench_compile, bench_pdg_build, bench_propagation);
criterion_main!(benches);

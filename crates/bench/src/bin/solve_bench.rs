//! `solve_bench` — the incremental-session perf harness (`BENCH_solve.json`).
//!
//! Replays the exact query stream the analysis issues over a fixed corpus
//! (the examples programs, a family of synthetic hot-sink subjects, and two
//! scaled workload subjects) through two solving modes:
//!
//! * **cold** — every query pays the full pipeline from scratch: fresh
//!   `TermPool`, re-translate, re-preprocess, re-bitblast, brand-new
//!   `SatSolver` (the pre-session behavior);
//! * **session** — one persistent `TermPool` + [`SolveSession`] per
//!   program: translation hash-conses shared slices, shared subterms
//!   bit-blast once, and learnt clauses carry across queries.
//!
//! Verdicts are asserted identical per query. The harness also runs the
//! end-to-end engine (`FusionSolver` with `incremental` on/off) over the
//! same corpus and asserts byte-identical reports.
//!
//! Output: `BENCH_solve.json` in the working directory (override with
//! `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process exits
//! non-zero when session mode is more than 10% slower than cold mode on
//! the corpus aggregate — the CI regression gate.

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions, AnalysisRun, Feasibility};
use fusion::graph_solver::FusionSolver;
use fusion::propagate::{discover, Candidate, PropagateOptions};
use fusion_bench::{banner, build_subject, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_pdg::slice::compute_slice;
use fusion_pdg::translate::{translate, TranslateOptions};
use fusion_smt::session::SolveSession;
use fusion_smt::solver::{smt_solve, SatResult};
use fusion_smt::term::TermPool;
use fusion_workloads::SUBJECTS;
use std::fmt::Write as _;
use std::time::Instant;

/// Aggregate counters for one solving mode.
#[derive(Debug, Default, Clone, Copy)]
struct ModeTotals {
    wall_us: u128,
    terms_built: u64,
    cnf_clauses: u64,
    sat_conflicts: u64,
    queries: u64,
    preprocess_decided: u64,
    sat: u64,
    unsat: u64,
    unknown: u64,
}

impl ModeTotals {
    fn per_query_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.wall_us as f64 / self.queries as f64
        }
    }

    fn count(&mut self, r: &SatResult) {
        match r {
            SatResult::Sat(_) => self.sat += 1,
            SatResult::Unsat => self.unsat += 1,
            SatResult::Unknown => self.unknown += 1,
        }
    }
}

/// The Fig. 1 running example (same program the examples use).
const FIG1: &str = "extern fn deref(p);\n\
    fn bar(x) { let y = x * 2; let z = y; return z; }\n\
    fn foo(a, b) {\n\
      let pp = null;\n\
      let c = bar(a);\n\
      let d = bar(b);\n\
      let r = 1;\n\
      if (c < d) { r = pp; }\n\
      deref(r);\n\
      return 0;\n\
    }";

/// An interprocedural mix: constant and affine callees, one infeasible
/// guard pair.
const INTERPROC: &str = "extern fn deref(p);\n\
    fn ten() { return 10; }\n\
    fn inc(x) { return x + 1; }\n\
    fn foo(a) {\n\
      let pp = null;\n\
      let r = 1;\n\
      if (ten() > 5) { r = pp; }\n\
      deref(r);\n\
      let qq = null;\n\
      let s = 1;\n\
      if (inc(a) > 3) { if (inc(a) < 2) { s = qq; } }\n\
      deref(s);\n\
      return 0;\n\
    }";

/// Synthetic hot-sink subjects: `funcs` functions, each with one shared
/// nonlinear core (`w = x * y` via an opaque callee) guarding `sinks`
/// null-deref candidates. Candidates against one sink function share
/// almost all of their slice — exactly the redundancy the session layer
/// amortizes — and the `x * y == k` guards survive preprocessing, so the
/// shared multiplier must be bit-blasted (once per session, once per
/// query when cold).
fn hot_sink_source(funcs: usize, sinks: usize) -> String {
    let mut s = String::from("extern fn deref(p);\n");
    for f in 0..funcs {
        let _ = writeln!(
            s,
            "fn churn{f}(a, b) {{ let t = a * b; let u = t * t + a; \
             let v = u * b + t; let z = v * v + u; return z; }}"
        );
        let _ = writeln!(s, "fn hot{f}(x, y) {{");
        let _ = writeln!(s, "  let w = churn{f}(x, y);");
        for k in 0..sinks {
            let target = 77 + 2 * k + f;
            let _ = writeln!(
                s,
                "  let q{k} = null; let r{k} = 1; if (w == {target}) {{ r{k} = q{k}; }} deref(r{k});"
            );
        }
        // One unsatisfiable guard per function: x² = 3 has no solution
        // modulo a power of two, so the session sees UNSAT-after-SAT.
        let _ = writeln!(
            s,
            "  let qz = null; let rz = 1; if (x * x == 3) {{ rz = qz; }} deref(rz);"
        );
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

/// One corpus entry: a compiled program with its dependence graph.
struct Entry {
    name: String,
    program: Program,
    pdg: Pdg,
}

fn corpus() -> Vec<Entry> {
    let mut entries = Vec::new();
    let mut push_src = |name: &str, src: &str| {
        let program = compile(src, CompileOptions::default()).expect("corpus compiles");
        let pdg = Pdg::build(&program);
        entries.push(Entry {
            name: name.to_string(),
            program,
            pdg,
        });
    };
    push_src("fig1", FIG1);
    push_src("interproc", INTERPROC);
    let hot = hot_sink_source(6, 20);
    push_src("hot-sinks", &hot);
    // Two scaled workload subjects for realism (scale via FUSION_SCALE).
    let scale = scale_from_env();
    for spec in &SUBJECTS[..2] {
        let subject = build_subject(spec, scale);
        entries.push(Entry {
            name: spec.name.to_string(),
            program: subject.program,
            pdg: subject.pdg,
        });
    }
    entries
}

/// The query stream of one program, batched into slice groups exactly as
/// the drivers dispatch them: candidates grouped by sink function
/// (first-occurrence order), candidate order within a group, every path of
/// every candidate.
fn query_groups(candidates: &[Candidate]) -> Vec<Vec<(usize, usize)>> {
    let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        let key = c.sink.func.0 as u64;
        match order.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => order.push((key, vec![i])),
        }
    }
    order
        .into_iter()
        .map(|(_, idxs)| {
            idxs.into_iter()
                .flat_map(|i| (0..candidates[i].paths.len()).map(move |p| (i, p)))
                .collect()
        })
        .collect()
}

fn main() {
    banner(
        "solve_bench: cold vs incremental-session solving",
        "same query stream, two pipelines; verdicts asserted identical",
    );
    let budget = default_budget();
    let opts = TranslateOptions::default();
    let checker = Checker::null_deref();
    let mut cold = ModeTotals::default();
    let mut session_t = ModeTotals::default();
    let mut engine_cold_us: u128 = 0;
    let mut engine_inc_us: u128 = 0;
    let mut engine_cold_terms: u64 = 0;
    let mut engine_inc_terms: u64 = 0;
    let mut reports_identical = true;

    for entry in corpus() {
        let candidates = discover(
            &entry.program,
            &entry.pdg,
            &checker,
            &PropagateOptions::default(),
        );
        let groups = query_groups(&candidates);
        let stream: Vec<(usize, usize)> = groups.iter().flatten().copied().collect();

        // ---- cold: fresh pool + cold pipeline per query ----
        let t0 = Instant::now();
        let mut cold_verdicts = Vec::with_capacity(stream.len());
        for &(ci, pi) in &stream {
            let path = std::slice::from_ref(&candidates[ci].paths[pi]);
            let slice = compute_slice(&entry.program, &entry.pdg, path);
            let mut pool = TermPool::new();
            let Ok(tr) = translate(&entry.program, &slice, &mut pool, &opts) else {
                cold_verdicts.push(SatResult::Unknown);
                continue;
            };
            let (r, stats) = smt_solve(&mut pool, tr.formula, &budget);
            cold.terms_built += pool.len() as u64;
            cold.cnf_clauses += stats.cnf_clauses as u64;
            cold.sat_conflicts += stats.sat_conflicts;
            cold.preprocess_decided += u64::from(stats.preprocess_decided);
            cold.queries += 1;
            cold.count(&r);
            cold_verdicts.push(r);
        }
        cold.wall_us += t0.elapsed().as_micros();

        // ---- session: one pool per program, one SolveSession per slice
        // group (exactly the engine's epoch discipline: queries in a group
        // share almost everything; across groups a persistent session
        // would only grow the CDCL universe every query must re-search).
        let t1 = Instant::now();
        let mut pool = TermPool::new();
        let mut sess_verdicts = Vec::with_capacity(stream.len());
        for group in &groups {
            let mut session = SolveSession::new();
            for &(ci, pi) in group {
                let path = std::slice::from_ref(&candidates[ci].paths[pi]);
                let slice = compute_slice(&entry.program, &entry.pdg, path);
                let before = pool.len();
                let Ok(tr) = translate(&entry.program, &slice, &mut pool, &opts) else {
                    sess_verdicts.push(SatResult::Unknown);
                    continue;
                };
                let (r, stats) = session.solve_formula(&mut pool, tr.formula, &budget);
                session_t.terms_built += (pool.len() - before) as u64;
                session_t.cnf_clauses += stats.cnf_clauses as u64;
                session_t.sat_conflicts += stats.sat_conflicts;
                session_t.preprocess_decided += u64::from(stats.preprocess_decided);
                session_t.queries += 1;
                session_t.count(&r);
                sess_verdicts.push(r);
            }
        }
        session_t.wall_us += t1.elapsed().as_micros();

        for (i, (a, b)) in cold_verdicts.iter().zip(&sess_verdicts).enumerate() {
            let agree = matches!(
                (a, b),
                (SatResult::Sat(_), SatResult::Sat(_))
                    | (SatResult::Unsat, SatResult::Unsat)
                    | (SatResult::Unknown, SatResult::Unknown)
            );
            assert!(
                agree,
                "{}: query {i} verdict mismatch: cold={a:?} session={b:?}",
                entry.name
            );
        }

        // ---- end-to-end engine: incremental on vs off ----
        let run_engine = |incremental: bool| -> (AnalysisRun, u64, u128) {
            let mut engine = FusionSolver::new(budget);
            engine.incremental = incremental;
            let t = Instant::now();
            let run = analyze(
                &entry.program,
                &entry.pdg,
                &checker,
                &mut engine,
                &AnalysisOptions::without_cache(),
            );
            let us = t.elapsed().as_micros();
            (run, engine.metrics().terms_built, us)
        };
        let (run_c, terms_c, us_c) = run_engine(false);
        let (run_i, terms_i, us_i) = run_engine(true);
        engine_cold_us += us_c;
        engine_inc_us += us_i;
        engine_cold_terms += terms_c;
        engine_inc_terms += terms_i;
        let key =
            |r: &fusion::engine::BugReport| (r.source, r.sink, r.verdict, r.path.nodes.clone());
        let a: Vec<_> = run_c.reports.iter().map(key).collect();
        let b: Vec<_> = run_i.reports.iter().map(key).collect();
        if a != b || run_c.suppressed != run_i.suppressed {
            reports_identical = false;
        }
        println!(
            "  {:<12} queries={:<4} sat/unsat/unk={}/{}/{} reports={} (identical: {})",
            entry.name,
            stream.len(),
            run_i
                .reports
                .iter()
                .filter(|r| r.verdict == Feasibility::Feasible)
                .count(),
            run_i.suppressed,
            run_i
                .reports
                .iter()
                .filter(|r| r.verdict == Feasibility::Unknown)
                .count(),
            run_i.reports.len(),
            a == b,
        );
    }
    assert!(reports_identical, "incremental mode changed engine reports");

    let pct = |cold: f64, new: f64| -> f64 {
        if cold <= 0.0 {
            0.0
        } else {
            100.0 * (cold - new) / cold
        }
    };
    let wall_pct = pct(cold.wall_us as f64, session_t.wall_us as f64);
    let terms_pct = pct(cold.terms_built as f64, session_t.terms_built as f64);
    let clause_pct = pct(cold.cnf_clauses as f64, session_t.cnf_clauses as f64);

    println!("--------------------------------------------------------------");
    println!(
        "cold:    wall={:>9.3}ms terms={:<9} clauses={:<8} conflicts={:<6} {:.1}us/q",
        cold.wall_us as f64 / 1000.0,
        cold.terms_built,
        cold.cnf_clauses,
        cold.sat_conflicts,
        cold.per_query_us()
    );
    println!(
        "session: wall={:>9.3}ms terms={:<9} clauses={:<8} conflicts={:<6} {:.1}us/q",
        session_t.wall_us as f64 / 1000.0,
        session_t.terms_built,
        session_t.cnf_clauses,
        session_t.sat_conflicts,
        session_t.per_query_us()
    );
    println!("reduction: wall {wall_pct:.1}% | terms {terms_pct:.1}% | clauses {clause_pct:.1}%");
    println!(
        "engine (analyze, no cache): cold {:.3}ms / incremental {:.3}ms, terms {} -> {}",
        engine_cold_us as f64 / 1000.0,
        engine_inc_us as f64 / 1000.0,
        engine_cold_terms,
        engine_inc_terms,
    );

    let mode_json = |m: &ModeTotals| -> String {
        format!(
            "{{\"wall_us\": {}, \"terms_built\": {}, \"cnf_clauses\": {}, \
             \"sat_conflicts\": {}, \"queries\": {}, \"per_query_us\": {:.2}, \
             \"preprocess_decided\": {}, \"sat\": {}, \"unsat\": {}, \"unknown\": {}}}",
            m.wall_us,
            m.terms_built,
            m.cnf_clauses,
            m.sat_conflicts,
            m.queries,
            m.per_query_us(),
            m.preprocess_decided,
            m.sat,
            m.unsat,
            m.unknown
        )
    };
    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": 1,\n  \"iters\": 1,\n  \
         \"cold\": {},\n  \"session\": {},\n  \
         \"reduction\": {{\"wall_pct\": {wall_pct:.2}, \"terms_pct\": {terms_pct:.2}, \
         \"clauses_pct\": {clause_pct:.2}}},\n  \
         \"engine\": {{\"cold_us\": {engine_cold_us}, \"incremental_us\": {engine_inc_us}, \
         \"cold_terms_built\": {engine_cold_terms}, \"incremental_terms_built\": {engine_inc_terms}, \
         \"reports_identical\": {reports_identical}}}\n}}\n",
        scale_from_env(),
        mode_json(&cold),
        mode_json(&session_t),
    );
    report::write("BENCH_solve.json", &json);

    // CI gate: session must never be >10% slower than cold.
    let gate = report::Gate::from_env();
    gate.require(
        session_t.wall_us as f64 <= cold.wall_us as f64 * 1.10,
        || {
            format!(
                "session wall {}us exceeds 110% of cold wall {}us",
                session_t.wall_us, cold.wall_us
            )
        },
    );
    gate.pass("session within 110% of cold");
}

//! A sharded, lock-striped feasibility-verdict memo cache.
//!
//! Parallel solving re-derives the same dependence paths over and over:
//! different candidates share sub-flows, alternative paths of one candidate
//! overlap, and every worker engine starts from scratch. Following the
//! observation that redundant per-query work dominates value-flow solving
//! cost, [`VerdictCache`] memoizes the *verdict* of a path-set query under
//! a canonical content hash so any worker can reuse any other worker's
//! result.
//!
//! Design points:
//!
//! * **Keyed by content, not identity.** [`VerdictCache::key`] hashes the
//!   vertex sequence, the inter-procedural link labels, *and* each vertex's
//!   transfer function (its SSA definition: kind tag, operands, guard), so
//!   two structurally identical queries collide on purpose while any
//!   semantic difference separates them.
//! * **Lock-striped.** The map is split over [`VerdictCache::shards`]
//!   mutexes selected by key, so concurrent workers rarely contend.
//! * **Never caches [`Feasibility::Unknown`].** Unknown means a budget ran
//!   out; a later query with a fresh budget (or a warmer engine) may still
//!   decide it, so Unknown is recomputed rather than memoized.
//! * **Observable.** Hit/miss/insert counters are lock-free atomics; the
//!   retained size is charged to [`Category::Cache`][crate::memory::Category]
//!   by the analysis drivers via [`VerdictCache::bytes`].
//! * **Checker-independent.** The key deliberately contains *no*
//!   [`CheckerId`][crate::checkers::CheckerId]: a feasibility verdict is a
//!   pure function of the path's *conditions* — the vertex sequence, the
//!   link labels, and each vertex's transfer function, all of which
//!   [`path_set_key`] hashes — and never of the client fact flowing along
//!   it (null-ness, taint, privacy). The checker only decides *which*
//!   paths get discovered; once a path exists, "can some execution take
//!   it?" is the same question for every client. A fused multi-client
//!   pass therefore shares this cache across checkers: when two checkers
//!   discover byte-identical path content (e.g. overlapping source/sink
//!   vocabularies), the second checker's queries hit the first's
//!   verdicts. This is still not condition caching in the §3.2.2 sense —
//!   the cache stores three-valued *verdicts*, never formulas.
//! * **128-bit keys.** A bare 64-bit content hash is too narrow for a
//!   *correctness-bearing* memo: at a few hundred million distinct path
//!   sets the birthday bound makes a silent collision — and therefore a
//!   silently wrong verdict or closure — plausible over a large scan
//!   corpus. [`path_set_key`] therefore folds the serialized path content
//!   into **two independently seeded FNV-1a streams** and keys both this
//!   cache and [`crate::slice_cache::SliceCache`] on the [`Key128`] pair.
//!   Colliding now requires the same unstructured input to collide under
//!   both seeds simultaneously (~2⁻¹²⁸ per pair), while the fold stays
//!   allocation-free and order-deterministic.

use crate::engine::Feasibility;
use fusion_ir::ssa::{DefKind, Program};
use fusion_pdg::paths::{DependencePath, Link};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Approximate retained bytes per cache entry: the 16-byte key, the
/// verdict, and amortized hash-table overhead (bucket slot, control bytes,
/// growth slack).
pub const BYTES_PER_CACHE_ENTRY: u64 = 40;

/// The widened content key: the same word stream folded through two
/// independently seeded FNV-1a streams. Two path sets alias only if they
/// collide under *both* seeds, pushing the effective collision bound from
/// a birthday-plausible 2⁻⁶⁴ to a negligible 2⁻¹²⁸.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key128 {
    /// The primary FNV-1a stream (the pre-widening 64-bit key).
    pub lo: u64,
    /// The second, independently seeded stream.
    pub hi: u64,
}

impl Key128 {
    /// Assembles a key from its two halves. Mostly useful in tests that
    /// need hand-built (e.g. deliberately half-colliding) keys; analysis
    /// code obtains keys from [`path_set_key`].
    pub fn from_parts(lo: u64, hi: u64) -> Self {
        Key128 { lo, hi }
    }

    /// The lock-stripe index for this key among `shards` stripes.
    pub(crate) fn shard_index(self, shards: usize) -> usize {
        (self.lo as usize) % shards
    }
}

/// Monotonic cache counters, plus the retained entry count and byte size
/// at observation time. Obtained from [`VerdictCache::stats`]; two
/// snapshots subtract ([`CacheStats::since`]) to scope numbers to one run
/// when a cache is shared across runs or checkers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to go to an engine.
    pub misses: u64,
    /// Verdicts stored (Unknown verdicts are never stored).
    pub inserts: u64,
    /// Entries retained at observation time.
    pub entries: u64,
    /// Retained bytes at observation time.
    pub bytes: u64,
}

impl CacheStats {
    /// Counter deltas relative to an `earlier` snapshot of the same cache;
    /// `entries`/`bytes` stay absolute (they describe current retention,
    /// not traffic).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            entries: self.entries,
            bytes: self.bytes,
        }
    }

    /// Hit rate in `[0, 1]` (0 when no queries were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded feasibility-verdict cache shared across worker engines.
///
/// All methods take `&self`; the cache is `Sync` and meant to be shared by
/// reference (or `Arc`) across the solving threads of one or many runs.
pub struct VerdictCache {
    shards: Vec<Mutex<HashMap<Key128, Feasibility>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

const DEFAULT_SHARDS: usize = 16;

impl VerdictCache {
    /// A cache with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with `shards` lock stripes (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        VerdictCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The canonical key of a path-set query: see [`path_set_key`].
    pub fn key(program: &Program, paths: &[DependencePath]) -> Key128 {
        path_set_key(program, paths)
    }

    /// Looks up a verdict, counting a hit or miss.
    pub fn get(&self, key: Key128) -> Option<Feasibility> {
        let shard = &self.shards[key.shard_index(self.shards.len())];
        let found = shard
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict. [`Feasibility::Unknown`] is *not* stored: it only
    /// says a budget ran out, and memoizing it would pin the failure.
    pub fn insert(&self, key: Key128, verdict: Feasibility) {
        if verdict == Feasibility::Unknown {
            return;
        }
        let shard = &self.shards[key.shard_index(self.shards.len())];
        let inserted = shard
            .lock()
            .expect("cache shard poisoned")
            .insert(key, verdict)
            .is_none();
        if inserted {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes the given keys, returning how many were actually present.
    /// This is the incremental-rescan invalidation hook: the dirtiness
    /// tracker ([`crate::incremental`]) resolves which keys *can involve*
    /// an edited function via the recorded key→functions provenance and
    /// evicts exactly those. Eviction is **correctness-critical** here —
    /// [`path_set_key`] hashes only on-path content, while the memoized
    /// verdict also depends on the off-path definitions the slice closure
    /// pulls in from every function the path traverses — so a stale entry
    /// could silently replay a verdict the edited program no longer
    /// warrants.
    pub fn remove_keys(&self, keys: &[Key128]) -> u64 {
        let mut removed = 0u64;
        for &key in keys {
            let shard = &self.shards[key.shard_index(self.shards.len())];
            if shard
                .lock()
                .expect("cache shard poisoned")
                .remove(&key)
                .is_some()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Total retained entries across shards.
    pub fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len() as u64)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate retained bytes (entries × [`BYTES_PER_CACHE_ENTRY`]).
    pub fn bytes(&self) -> u64 {
        self.len() * BYTES_PER_CACHE_ENTRY
    }

    /// A point-in-time copy of every retained entry, for snapshot
    /// serialization ([`crate::snapshot`]). Order is unspecified; the
    /// writer sorts by key before encoding.
    pub fn entries(&self) -> Vec<(Key128, Feasibility)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// A consistent-enough snapshot of the counters and retention.
    pub fn stats(&self) -> CacheStats {
        let entries = self.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries,
            bytes: entries * BYTES_PER_CACHE_ENTRY,
        }
    }
}

/// The canonical content key of a path-set query: a dual FNV-1a fold over
/// every path's vertex sequence, link labels, and per-vertex transfer
/// function (definition kind, operands, guard), producing a 128-bit
/// [`Key128`] (two independently seeded 64-bit streams over the same
/// words). Identical program + identical paths ⇒ identical key,
/// independent of discovery order, worker, or allocation. Shared by
/// [`VerdictCache`] (verdict memo) and
/// [`crate::slice_cache::SliceCache`] (closure memo): the same content
/// identity governs both, since a slice closure and a verdict are each
/// pure functions of the path set's dependence structure.
pub fn path_set_key(program: &Program, paths: &[DependencePath]) -> Key128 {
    let mut h = Fnv::new();
    h.write(paths.len() as u64);
    for path in paths {
        h.write(0xDEAD_BEEF); // path separator
        h.write(path.nodes.len() as u64);
        for v in &path.nodes {
            h.write(v.func.0 as u64);
            h.write(v.var.0 as u64);
            hash_transfer(&mut h, program, *v);
        }
        for link in &path.links {
            match link {
                Link::Local => h.write(1),
                Link::Enter(s) => {
                    h.write(2);
                    h.write(s.0 as u64);
                }
                Link::Exit(s) => {
                    h.write(3);
                    h.write(s.0 as u64);
                }
            }
        }
    }
    h.finish()
}

/// Folds the transfer function of vertex `v` into the hash: the definition
/// kind's tag and fields. Two vertices with equal ids but different
/// definitions (different programs) hash apart.
pub(crate) fn hash_transfer(h: &mut Fnv, program: &Program, v: fusion_pdg::graph::Vertex) {
    let def = program.func(v.func).def(v.var);
    match &def.kind {
        DefKind::Param { index } => {
            h.write(10);
            h.write(*index as u64);
        }
        DefKind::Const { value, is_null } => {
            h.write(11);
            h.write(*value as u64);
            h.write(*is_null as u64);
        }
        DefKind::Copy { src } => {
            h.write(12);
            h.write(src.0 as u64);
        }
        DefKind::Binary { op, lhs, rhs } => {
            h.write(13);
            h.write(*op as u64);
            h.write(lhs.0 as u64);
            h.write(rhs.0 as u64);
        }
        DefKind::Ite {
            cond,
            then_v,
            else_v,
        } => {
            h.write(14);
            h.write(cond.0 as u64);
            h.write(then_v.0 as u64);
            h.write(else_v.0 as u64);
        }
        DefKind::Call { callee, args, site } => {
            h.write(15);
            h.write(callee.0 as u64);
            h.write(site.0 as u64);
            h.write(args.len() as u64);
            for a in args {
                h.write(a.0 as u64);
            }
        }
        DefKind::Branch { cond } => {
            h.write(16);
            h.write(cond.0 as u64);
        }
        DefKind::Return { src } => {
            h.write(17);
            h.write(src.0 as u64);
        }
    }
    match def.guard {
        None => h.write(20),
        Some(g) => {
            h.write(21);
            h.write(g.0 as u64);
        }
    }
}

/// The standard FNV-1a 64-bit offset basis: seed of the primary stream
/// (and of the pre-widening key, so the low half is bit-compatible with
/// the historical 64-bit key).
const FNV_SEED_LO: u64 = 0xcbf2_9ce4_8422_2325;
/// Seed of the second stream — any constant distinct from the offset
/// basis works; the byte-wise XOR-multiply fold is nonlinear, so the two
/// streams diverge immediately and never track each other.
const FNV_SEED_HI: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Dual-stream FNV-1a over u64 words (each word folded byte-wise for
/// diffusion into both streams).
pub(crate) struct Fnv {
    lo: u64,
    hi: u64,
}

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv {
            lo: FNV_SEED_LO,
            hi: FNV_SEED_HI,
        }
    }

    pub(crate) fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.lo ^= byte as u64;
            self.lo = self.lo.wrapping_mul(FNV_PRIME);
            self.hi ^= byte as u64;
            self.hi = self.hi.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn finish(&self) -> Key128 {
        Key128 {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};
    use fusion_pdg::graph::Pdg;

    /// A distinct, hand-built test key per index.
    fn k(n: u64) -> Key128 {
        Key128::from_parts(n, !n)
    }

    fn program_and_paths() -> (Program, Vec<DependencePath>) {
        let src = "extern fn deref(p);\n\
            fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
            fn g(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }";
        let program = compile(src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let checker = crate::checkers::Checker::null_deref();
        let cands = crate::propagate::discover(
            &program,
            &pdg,
            &checker,
            &crate::propagate::PropagateOptions::default(),
        );
        let paths: Vec<DependencePath> = cands.into_iter().flat_map(|c| c.paths).collect();
        assert!(paths.len() >= 2, "expected at least two candidate paths");
        (program, paths)
    }

    #[test]
    fn key_is_deterministic_and_content_sensitive() {
        let (program, paths) = program_and_paths();
        let k1 = VerdictCache::key(&program, std::slice::from_ref(&paths[0]));
        let k2 = VerdictCache::key(&program, std::slice::from_ref(&paths[0]));
        assert_eq!(k1, k2, "same content, same key");
        let other = VerdictCache::key(&program, std::slice::from_ref(&paths[1]));
        assert_ne!(k1, other, "f and g paths traverse different vertices");
        // Both streams must separate distinct content, not just the pair.
        assert_ne!(k1.lo, other.lo, "primary stream distinguishes paths");
        assert_ne!(k1.hi, other.hi, "secondary stream distinguishes paths");
    }

    #[test]
    fn colliding_prefix_keys_no_longer_alias() {
        // Regression for the 64-bit-key soundness hole: before widening,
        // the cache key was exactly `Key128::lo`, so two path sets whose
        // primary FNV streams collide would silently alias and return one
        // another's verdicts/closures. Model that collision with two
        // hand-built keys sharing the full 64-bit prefix and differing
        // only in the independently seeded second stream: the widened
        // cache must keep them separate.
        let a = Key128::from_parts(0xDEAD_BEEF_DEAD_BEEF, 0x1111_1111_1111_1111);
        let b = Key128::from_parts(0xDEAD_BEEF_DEAD_BEEF, 0x2222_2222_2222_2222);
        assert_eq!(a.lo, b.lo, "the old 64-bit keys collide");
        assert_ne!(a, b, "the widened keys do not");
        let cache = VerdictCache::with_shards(4);
        cache.insert(a, Feasibility::Feasible);
        cache.insert(b, Feasibility::Infeasible);
        assert_eq!(cache.get(a), Some(Feasibility::Feasible));
        assert_eq!(cache.get(b), Some(Feasibility::Infeasible));
        assert_eq!(cache.len(), 2, "colliding-prefix keys occupy two entries");
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = VerdictCache::with_shards(4);
        assert_eq!(cache.get(k(42)), None);
        cache.insert(k(42), Feasibility::Feasible);
        assert_eq!(cache.get(k(42)), Some(Feasibility::Feasible));
        cache.insert(k(43), Feasibility::Infeasible);
        assert_eq!(cache.get(k(43)), Some(Feasibility::Infeasible));
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 2 * BYTES_PER_CACHE_ENTRY);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_is_never_stored() {
        let cache = VerdictCache::new();
        cache.insert(k(7), Feasibility::Unknown);
        assert!(cache.is_empty());
        assert_eq!(cache.get(k(7)), None);
        assert_eq!(cache.stats().inserts, 0);
    }

    #[test]
    fn reinsert_does_not_double_count() {
        let cache = VerdictCache::new();
        cache.insert(k(1), Feasibility::Feasible);
        cache.insert(k(1), Feasibility::Feasible);
        assert_eq!(cache.stats().inserts, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_since_scopes_counters() {
        let cache = VerdictCache::new();
        cache.insert(k(1), Feasibility::Feasible);
        let _ = cache.get(k(1));
        let before = cache.stats();
        let _ = cache.get(k(1));
        let _ = cache.get(k(2));
        let delta = cache.stats().since(&before);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.inserts, 0);
    }

    #[test]
    fn concurrent_workers_share_verdicts() {
        let cache = VerdictCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..256u64 {
                        let key = i % 32;
                        if cache.get(k(key)).is_none() {
                            let v = if key % 2 == 0 {
                                Feasibility::Feasible
                            } else {
                                Feasibility::Infeasible
                            };
                            cache.insert(k(key), v);
                        }
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        for key in 0..32u64 {
            let want = if key % 2 == 0 {
                Feasibility::Feasible
            } else {
                Feasibility::Infeasible
            };
            assert_eq!(cache.get(k(key)), Some(want), "key {key}");
        }
        let s = cache.stats();
        assert!(s.hits > 0 && s.misses >= 32);
    }
}

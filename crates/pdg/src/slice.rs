//! Slicing a program dependence graph with respect to a path set Π
//! (Rules 1–3 of Fig. 8).
//!
//! The slice has two parts:
//!
//! * a **context-free, per-function vertex set** `V[Π] ∩ f` — the backward
//!   closure, over data dependence, of every branch condition the paths
//!   control-depend on (Rules 2–3). The closure crosses call and return
//!   edges *modularly*: entering a callee records the call-site link
//!   without cloning anything — this is precisely the linear-size "slice
//!   as the path condition" of §2;
//! * a list of **context-tagged constraints** — for every path vertex, its
//!   guard chain must be true (Rule 2 → Rule 5), and every `ite` the path
//!   flows through must select the traversed input (Rule 1), each tagged
//!   with the calling context the path occupied at that vertex.

use crate::graph::Pdg;
use crate::paths::{Context, DependencePath};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program, VarId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The per-function part of a slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncSlice {
    /// Sliced definitions of this function, in `V[Π]`.
    pub verts: BTreeSet<VarId>,
    /// Call sites *within other functions* that instantiate this function
    /// and whose actual arguments therefore bind this function's sliced
    /// parameters.
    pub entry_sites: BTreeSet<CallSiteId>,
}

/// A context-tagged feasibility constraint (Rules 1 and 5).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Constraint {
    /// The calling context of the constrained vertex.
    pub ctx: Context,
    /// The function containing the constrained vertex.
    pub func: FuncId,
    /// What must hold.
    pub kind: ConstraintKind,
}

/// The kinds of feasibility constraints a path induces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// A guarding branch's condition variable must be nonzero (Rule 5:
    /// `[if (v1 = v2)]_c = (v1 = true)`).
    BranchTrue {
        /// The branch vertex.
        branch: VarId,
    },
    /// The path flows through an `ite` via one input; the condition must
    /// select it (Rule 1 edge pruning).
    IteGate {
        /// The `ite` vertex.
        ite: VarId,
        /// `true` when the path enters through the then-input.
        taken_then: bool,
    },
}

/// The slice `G[Π]` in modular form.
#[derive(Debug, Clone, Default)]
pub struct Slice {
    /// Per-function vertex sets.
    pub funcs: BTreeMap<FuncId, FuncSlice>,
    /// Deduplicated, context-tagged constraints.
    pub constraints: Vec<Constraint>,
}

impl Slice {
    /// Total number of sliced vertices across functions — the linear
    /// "condition size" of the fused design (Table 1's `O(n + m)`).
    pub fn vertex_count(&self) -> usize {
        self.funcs.values().map(|f| f.verts.len()).sum()
    }
}

/// The cheap front half of slicing: constraint roots extracted from the
/// paths themselves (Rules 1–2), before any backward closure runs.
struct Roots {
    /// Deduplicated context-tagged constraints.
    constraints: BTreeSet<Constraint>,
    /// Closure worklist of `(func, var)` roots.
    work: VecDeque<(FuncId, VarId)>,
    /// Sites known to instantiate each callee (path entries).
    entry_sites: BTreeMap<FuncId, BTreeSet<CallSiteId>>,
}

/// Phase 1: walk the paths, collecting constraints (Rules 1, 2) and the
/// roots the backward closure will start from. Linear in total path
/// length — the expensive part of slicing is Phase 2's closure.
fn collect_roots(program: &Program, paths: &[DependencePath]) -> Roots {
    let mut constraints: BTreeSet<Constraint> = BTreeSet::new();
    let mut work: VecDeque<(FuncId, VarId)> = VecDeque::new();
    let mut entry_sites: BTreeMap<FuncId, BTreeSet<CallSiteId>> = BTreeMap::new();
    let push_root = |work: &mut VecDeque<(FuncId, VarId)>, f: FuncId, v: VarId| {
        work.push_back((f, v));
    };

    // Phase 1: constraints from the paths (Rules 1, 2).
    for path in paths {
        let ctxs = path.contexts();
        for (i, node) in path.nodes.iter().enumerate() {
            let func = program.func(node.func);
            // Rule 2: the full guard chain of every path vertex.
            for branch in func.guards(node.var) {
                constraints.insert(Constraint {
                    ctx: ctxs[i].clone(),
                    func: node.func,
                    kind: ConstraintKind::BranchTrue { branch },
                });
                let DefKind::Branch { cond } = func.def(branch).kind else {
                    unreachable!("guards are branches")
                };
                push_root(&mut work, node.func, cond);
            }
            // Rule 1: ite gating when the path flows through an ite input.
            if i > 0 {
                let prev = path.nodes[i - 1];
                if prev.func == node.func {
                    if let DefKind::Ite {
                        cond,
                        then_v,
                        else_v,
                    } = func.def(node.var).kind
                    {
                        let taken_then = if prev.var == then_v {
                            Some(true)
                        } else if prev.var == else_v {
                            Some(false)
                        } else {
                            None // entered through the condition: no gate
                        };
                        if let Some(taken_then) = taken_then {
                            constraints.insert(Constraint {
                                ctx: ctxs[i].clone(),
                                func: node.func,
                                kind: ConstraintKind::IteGate {
                                    ite: node.var,
                                    taken_then,
                                },
                            });
                            push_root(&mut work, node.func, cond);
                        }
                    }
                }
            }
        }
        // Record the call sites the path itself traverses.
        for (i, link) in path.links.iter().enumerate() {
            if let crate::paths::Link::Enter(s) = link {
                let callee = path.nodes[i + 1].func;
                entry_sites.entry(callee).or_default().insert(*s);
            }
            if let crate::paths::Link::Exit(s) = link {
                let callee = path.nodes[i].func;
                entry_sites.entry(callee).or_default().insert(*s);
            }
        }
    }
    Roots {
        constraints,
        work,
        entry_sites,
    }
}

/// Just the context-tagged constraints a path set induces (Rules 1 and
/// 5), *without* running the backward closure. This is the per-query
/// half of slicing that can never be shared: constraints depend on the
/// exact path, so recomputing them per feasibility query is both cheap
/// (linear in path length) and required for soundness. The expensive,
/// shareable half is [`compute_closure`].
pub fn constraints_for(program: &Program, paths: &[DependencePath]) -> Vec<Constraint> {
    collect_roots(program, paths)
        .constraints
        .into_iter()
        .collect()
}

/// The backward data-dependence closure `V[Π]` of Rules 2–3 — the
/// per-function vertex sets plus entry sites, *without* the
/// constraints. Unlike constraints, the closure is a monotone function
/// of the path set's dependence structure: the closure of a superset of
/// paths contains every definitional equation any subset needs, and
/// extra definitional equations over acyclic SSA never change
/// satisfiability (constraints are only ever asserted for the queried
/// path). That makes the closure safe to share across the alternative
/// paths of one candidate and to memoize across candidates, which is
/// exactly what `fusion::slice_cache::SliceCache` does. Formulas are
/// never part of this artifact (§3.2.2's discipline is preserved).
pub fn compute_closure(
    program: &Program,
    _pdg: &Pdg,
    paths: &[DependencePath],
) -> BTreeMap<FuncId, FuncSlice> {
    let roots = collect_roots(program, paths);
    close(program, roots.work, roots.entry_sites)
}

/// Phase 2: backward closure over data dependence (Rule 3), modular
/// across calls. Two event kinds interact: a parameter entering the
/// slice requires the matching actuals at every known entry site; a new
/// entry site requires the actuals for every already-sliced parameter.
fn close(
    program: &Program,
    mut work: VecDeque<(FuncId, VarId)>,
    mut entry_sites: BTreeMap<FuncId, BTreeSet<CallSiteId>>,
) -> BTreeMap<FuncId, FuncSlice> {
    let mut funcs: BTreeMap<FuncId, FuncSlice> = BTreeMap::new();
    let push_root = |work: &mut VecDeque<(FuncId, VarId)>, f: FuncId, v: VarId| {
        work.push_back((f, v));
    };
    let mut processed: BTreeSet<(FuncId, VarId)> = BTreeSet::new();
    // Pending site-param products handled via re-scanning on change.
    let mut site_work: VecDeque<(FuncId, CallSiteId)> = VecDeque::new();
    for (f, sites) in &entry_sites {
        for &s in sites {
            site_work.push_back((*f, s));
        }
    }
    loop {
        while let Some((f, v)) = work.pop_front() {
            if !processed.insert((f, v)) {
                continue;
            }
            let fs = funcs.entry(f).or_default();
            fs.verts.insert(v);
            let func = program.func(f);
            match &func.def(v).kind {
                DefKind::Call { callee, site, .. } => {
                    let callee_f = program.func(*callee);
                    if !callee_f.is_extern {
                        // Rule 8: dst = callee's return; close there.
                        let ret = callee_f.ret.expect("non-extern has return");
                        push_root(&mut work, *callee, ret);
                        let sites = entry_sites.entry(*callee).or_default();
                        if sites.insert(*site) {
                            site_work.push_back((*callee, *site));
                        }
                    }
                    // Extern: unconstrained result, no closure into args.
                }
                DefKind::Param { index } => {
                    // Rule 7: bound to the actual at every entry site.
                    let sites: Vec<CallSiteId> = entry_sites
                        .get(&f)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for s in sites {
                        let cs = program.call_site(s);
                        let caller = program.func(cs.caller);
                        let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                            unreachable!("call sites point at calls")
                        };
                        if let Some(&actual) = args.get(*index) {
                            push_root(&mut work, cs.caller, actual);
                        }
                    }
                }
                other => {
                    for op in other.operands() {
                        push_root(&mut work, f, op);
                    }
                }
            }
        }
        // New entry sites discovered: bind already-sliced params.
        let Some((callee, site)) = site_work.pop_front() else {
            break;
        };
        let sliced_params: Vec<(usize, VarId)> = program
            .func(callee)
            .params
            .iter()
            .enumerate()
            .filter(|(_, p)| processed.contains(&(callee, **p)))
            .map(|(i, p)| (i, *p))
            .collect();
        if !sliced_params.is_empty() {
            let cs = program.call_site(site);
            let caller = program.func(cs.caller);
            let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                unreachable!("call sites point at calls")
            };
            for (i, _) in sliced_params {
                if let Some(&actual) = args.get(i) {
                    work.push_back((cs.caller, actual));
                }
            }
        }
    }

    for (f, sites) in entry_sites {
        funcs.entry(f).or_default().entry_sites.extend(sites);
    }
    funcs
}

/// Computes the slice of Rules 1–3 for a set of dependence paths:
/// Phase 1 ([`constraints_for`]) plus Phase 2 ([`compute_closure`]),
/// sharing a single path walk.
pub fn compute_slice(program: &Program, _pdg: &Pdg, paths: &[DependencePath]) -> Slice {
    let roots = collect_roots(program, paths);
    let constraints = roots.constraints.into_iter().collect();
    let funcs = close(program, roots.work, roots.entry_sites);
    Slice { funcs, constraints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Vertex;
    use crate::paths::Link;
    use fusion_ir::{compile, CompileOptions};

    fn setup(src: &str) -> (Program, Pdg) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        (p, g)
    }

    /// The paper's Fig. 7 program: the slice of the path
    /// `(p = ⟨p⟩, q = p, r = q)` must contain the two branch conditions and
    /// everything they transitively depend on, but not the path itself.
    #[test]
    fn figure7_slice() {
        let (p, g) = setup(
            "fn foo(a, p) {\n\
               let q = 0; let r = 0;\n\
               let b = a > 20;\n\
               if (b) {\n\
                 q = p;\n\
                 let d = a * 2;\n\
                 let e = d > 90;\n\
                 if (e) { r = q; }\n\
               }\n\
               return r;\n\
             }",
        );
        let foo = p.func_by_name("foo").unwrap();
        // Copies are elided by lowering: the value of `p` reaches `return
        // r` through two gated merges, `r₁ = ite(e, p, 0)` (guarded by the
        // outer `if`) and `r₂ = ite(b, r₁, 0)`.
        let pp = foo.params[1];
        let r1 = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Ite { then_v, .. } if then_v == pp))
            .expect("inner merge of r");
        let r2 = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Ite { then_v, .. } if then_v == r1.var))
            .expect("outer merge of r");
        let ret = foo.ret.unwrap();
        let mut path = DependencePath::unit(Vertex::new(foo.id, pp));
        path.push(Link::Local, Vertex::new(foo.id, r1.var));
        path.push(Link::Local, Vertex::new(foo.id, r2.var));
        path.push(Link::Local, Vertex::new(foo.id, ret));
        let slice = compute_slice(&p, &g, &[path]);
        let fs = &slice.funcs[&foo.id];
        // Both branch conditions and their closure: a, b, d, e (plus
        // constants).
        assert!(fs.verts.contains(&foo.params[0]), "param a must be sliced");
        let binaries = fs
            .verts
            .iter()
            .filter(|v| matches!(foo.def(**v).kind, DefKind::Binary { .. }))
            .count();
        // b = a > 20, d = a * 2, e = d > 90.
        assert_eq!(binaries, 3, "verts: {:?}", fs.verts);
        // The path vertices themselves are not in the slice (Example 3.3).
        assert!(!fs.verts.contains(&r1.var));
        assert!(!fs.verts.contains(&r2.var));
        // Both `if`s are constrained: two ite gates, plus one asserted
        // branch (the inner merge sits under the outer guard).
        let gates = slice
            .constraints
            .iter()
            .filter(|c| {
                matches!(
                    c.kind,
                    ConstraintKind::IteGate {
                        taken_then: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(gates, 2);
        let branches = slice
            .constraints
            .iter()
            .filter(|c| matches!(c.kind, ConstraintKind::BranchTrue { .. }))
            .count();
        assert_eq!(branches, 1);
    }

    #[test]
    fn slice_is_linear_not_cloned() {
        // Figure 1's shape: bar called twice; the modular slice contains
        // bar's body ONCE (no per-call-site duplication).
        let (p, g) = setup(
            "fn bar(x) { let y = x * 2; let z = y; return z; }\n\
             fn foo(a, b) {\n\
               let pp = null;\n\
               let c = bar(a);\n\
               let d = bar(b);\n\
               if (c < d) { return pp; }\n\
               return 1;\n\
             }",
        );
        let foo = p.func_by_name("foo").unwrap();
        let bar = p.func_by_name("bar").unwrap();
        let null_def = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Const { is_null: true, .. }))
            .unwrap();
        // Follow the real gated value flow: null → ite(c<d, null, 0) →
        // ite(cont, 1, ·) → return — exactly the path the sparse analysis
        // discovers.
        let ite1 = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Ite { then_v, .. } if then_v == null_def.var))
            .expect("merge of the early return value");
        let ite2 = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Ite { else_v, .. } if else_v == ite1.var))
            .expect("merge of the continuation");
        let ret = foo.ret.unwrap();
        let mut path = DependencePath::unit(Vertex::new(foo.id, null_def.var));
        path.push(Link::Local, Vertex::new(foo.id, ite1.var));
        path.push(Link::Local, Vertex::new(foo.id, ite2.var));
        path.push(Link::Local, Vertex::new(foo.id, ret));
        let slice = compute_slice(&p, &g, &[path]);
        // bar's body appears once in the slice.
        let bar_slice = &slice.funcs[&bar.id];
        assert!(bar_slice.verts.len() <= bar.defs.len());
        assert_eq!(bar_slice.entry_sites.len(), 2); // both call sites linked
                                                    // Total sliced vertices are bounded by program size (no cloning).
        assert!(slice.vertex_count() <= p.size());
    }

    #[test]
    fn empty_paths_give_empty_slice() {
        let (p, g) = setup("fn f(x) { return x; }");
        let slice = compute_slice(&p, &g, &[]);
        assert_eq!(slice.vertex_count(), 0);
        assert!(slice.constraints.is_empty());
    }
}

//! Ergonomic construction of surface programs.
//!
//! A fluent builder over [`crate::ast`] for tests, tools and generators
//! that assemble programs programmatically instead of parsing text. The
//! builder owns the interner, so names are plain `&str`s at the call sites.
//!
//! # Examples
//!
//! ```
//! use fusion_ir::builder::ProgramBuilder;
//! use fusion_ir::CompileOptions;
//!
//! let mut b = ProgramBuilder::new();
//! b.extern_fn("deref", 1);
//! b.function("f", &["x"], |f| {
//!     f.let_("q", f.null());
//!     f.let_("r", f.int(1));
//!     let cond = f.gt(f.var("x"), f.int(3));
//!     f.if_(cond, |t| t.assign("r", t.var("q")), |_| {});
//!     f.call_stmt("deref", &[f.var("r")]);
//!     f.ret(f.int(0));
//! });
//! let program = b.compile(CompileOptions::default())?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), fusion_ir::CompileError>(())
//! ```

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
use crate::interner::Interner;
use crate::{compile_ast, CompileError, CompileOptions};
use std::cell::RefCell;

/// Builds a whole surface program.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: RefCell<Interner>,
    functions: Vec<Function>,
}

/// Builds one function body; obtained via [`ProgramBuilder::function`].
#[derive(Debug)]
pub struct FnBuilder<'p> {
    interner: &'p RefCell<Interner>,
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// An empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an external function with the given arity.
    pub fn extern_fn(&mut self, name: &str, arity: usize) {
        let mut i = self.interner.borrow_mut();
        let name = i.intern(name);
        let params = (0..arity).map(|k| i.intern(&format!("x{k}"))).collect();
        self.functions.push(Function {
            name,
            params,
            body: Vec::new(),
            is_extern: true,
        });
    }

    /// Defines a function; the closure receives an [`FnBuilder`] to emit
    /// the body.
    pub fn function(&mut self, name: &str, params: &[&str], build: impl FnOnce(&mut FnBuilder)) {
        let (name, params) = {
            let mut i = self.interner.borrow_mut();
            let name = i.intern(name);
            let params = params.iter().map(|p| i.intern(p)).collect();
            (name, params)
        };
        let mut f = FnBuilder {
            interner: &self.interner,
            stmts: Vec::new(),
        };
        build(&mut f);
        self.functions.push(Function {
            name,
            params,
            body: f.stmts,
            is_extern: false,
        });
    }

    /// Finishes the surface program (AST + interner).
    pub fn finish(self) -> (Program, Interner) {
        (
            Program {
                functions: self.functions,
            },
            self.interner.into_inner(),
        )
    }

    /// Compiles straight to validated core SSA.
    ///
    /// # Errors
    ///
    /// Propagates any [`CompileError`] from the pipeline.
    pub fn compile(self, options: CompileOptions) -> Result<crate::Program, CompileError> {
        let (surface, mut interner) = self.finish();
        compile_ast(&surface, &mut interner, options)
    }
}

impl FnBuilder<'_> {
    // --- expressions (pure; no statement emitted) ---

    /// Integer literal.
    pub fn int(&self, v: i64) -> Expr {
        Expr::Int(v)
    }

    /// The null literal.
    pub fn null(&self) -> Expr {
        Expr::Null
    }

    /// Variable reference.
    pub fn var(&self, name: &str) -> Expr {
        Expr::Var(self.interner.borrow_mut().intern(name))
    }

    /// Function call expression.
    pub fn call(&self, name: &str, args: &[Expr]) -> Expr {
        Expr::Call(self.interner.borrow_mut().intern(name), args.to_vec())
    }

    /// `a + b`.
    pub fn add(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a * b`.
    pub fn mul(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a == b` (0/1).
    pub fn eq(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `a < b` (signed, 0/1).
    pub fn lt(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `a > b` (signed, 0/1).
    pub fn gt(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Gt, a, b)
    }

    /// `!a`.
    pub fn not(&self, a: Expr) -> Expr {
        Expr::un(UnOp::Not, a)
    }

    /// Any other binary operator.
    pub fn bin(&self, op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::bin(op, a, b)
    }

    // --- statements ---

    /// `let name = e;`
    pub fn let_(&mut self, name: &str, e: Expr) {
        let sym = self.interner.borrow_mut().intern(name);
        self.stmts.push(Stmt::Let(sym, e));
    }

    /// `name = e;`
    pub fn assign(&mut self, name: &str, e: Expr) {
        let sym = self.interner.borrow_mut().intern(name);
        self.stmts.push(Stmt::Assign(sym, e));
    }

    /// `if (cond) { then } else { else }`.
    pub fn if_(
        &mut self,
        cond: Expr,
        then_b: impl FnOnce(&mut FnBuilder),
        else_b: impl FnOnce(&mut FnBuilder),
    ) {
        let mut t = FnBuilder {
            interner: self.interner,
            stmts: Vec::new(),
        };
        then_b(&mut t);
        let mut e = FnBuilder {
            interner: self.interner,
            stmts: Vec::new(),
        };
        else_b(&mut e);
        self.stmts.push(Stmt::If(cond, t.stmts, e.stmts));
    }

    /// `while (cond) { body }` (unrolled by compilation).
    pub fn while_(&mut self, cond: Expr, body: impl FnOnce(&mut FnBuilder)) {
        let mut b = FnBuilder {
            interner: self.interner,
            stmts: Vec::new(),
        };
        body(&mut b);
        self.stmts.push(Stmt::While(cond, b.stmts));
    }

    /// A call evaluated for its effects: `name(args);`
    pub fn call_stmt(&mut self, name: &str, args: &[Expr]) {
        let e = self.call(name, args);
        self.stmts.push(Stmt::Expr(e));
    }

    /// `return e;`
    pub fn ret(&mut self, e: Expr) {
        self.stmts.push(Stmt::Return(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval_core;

    #[test]
    fn builds_and_compiles_a_guarded_function() {
        let mut b = ProgramBuilder::new();
        b.function("clamp", &["x"], |f| {
            f.let_("r", f.var("x"));
            let cond = f.gt(f.var("x"), f.int(100));
            f.if_(cond, |t| t.assign("r", t.int(100)), |_| {});
            f.ret(f.var("r"));
        });
        let program = b.compile(CompileOptions::default()).expect("compiles");
        let clamp = program.func_by_name("clamp").unwrap();
        let (ev, _) = eval_core(&program, clamp.id, &[42], 10_000).unwrap();
        assert_eq!(ev.ret, 42);
        let (ev, _) = eval_core(&program, clamp.id, &[250], 10_000).unwrap();
        assert_eq!(ev.ret, 100);
    }

    #[test]
    fn builds_calls_and_loops() {
        let mut b = ProgramBuilder::new();
        b.function("double", &["v"], |f| {
            f.ret(f.mul(f.var("v"), f.int(2)));
        });
        b.function("main", &["n"], |f| {
            f.let_("acc", f.int(0));
            let cond = f.lt(f.var("acc"), f.var("n"));
            f.while_(cond, |w| {
                let next = w.call("double", &[w.add(w.var("acc"), w.int(1))]);
                w.assign("acc", next);
            });
            f.ret(f.var("acc"));
        });
        let program = b.compile(CompileOptions::default()).expect("compiles");
        assert_eq!(program.functions.len(), 2);
    }

    #[test]
    fn builder_errors_propagate() {
        let mut b = ProgramBuilder::new();
        b.function("broken", &[], |f| {
            f.ret(f.var("undefined_name"));
        });
        assert!(b.compile(CompileOptions::default()).is_err());
    }

    #[test]
    fn finish_exposes_surface_ast() {
        let mut b = ProgramBuilder::new();
        b.extern_fn("sink", 1);
        b.function("f", &[], |f| f.ret(f.int(0)));
        let (surface, interner) = b.finish();
        assert_eq!(surface.functions.len(), 2);
        let text = crate::pretty::surface_to_string(&surface, &interner);
        assert!(text.contains("extern fn sink"));
    }
}

//! # fusion-ir
//!
//! Front end and intermediate representation for the Fusion reproduction
//! (Shi et al., *Path-Sensitive Sparse Analysis without Path Conditions*,
//! PLDI 2021).
//!
//! The crate implements the paper's Fig. 4 mini-language end to end:
//!
//! * a structured **surface language** ([`ast`]) with a textual front end
//!   ([`parser`]);
//! * **lowering** ([`lower`]) to the paper's loop-free SSA core with
//!   `ite`-gating, loop unrolling and a single exit per function;
//! * the **core SSA form** ([`ssa`]) in which each definition is a
//!   program-dependence-graph vertex with explicit control dependence;
//! * **call graphs and recursion unrolling** ([`callgraph`], §4 of the
//!   paper: each call-graph cycle is unrolled twice);
//! * classical **dominance / control-dependence** algorithms
//!   ([`dominance`], [`cfg`]) used to cross-validate the gated lowering;
//! * reference **interpreters** ([`interp`]) giving dynamic ground truth.
//!
//! ## Quick start
//!
//! ```
//! use fusion_ir::{compile, CompileOptions};
//!
//! let program = compile(
//!     "fn bar(x) { let y = x * 2; return y; }
//!      fn foo(a) { if (bar(a) > 10) { return 1; } return 0; }",
//!     CompileOptions::default(),
//! )?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), fusion_ir::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod dominance;
pub mod interner;
pub mod interp;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod ssa;
pub mod validate;

pub use interner::{Interner, Symbol};
pub use ssa::{CallSiteId, DefKind, FuncId, Op, Program, VarId};

use std::error::Error;
use std::fmt;

/// Options for the end-to-end [`compile`] pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// `while`-loop unroll factor (paper default: a small fixed bound).
    pub loop_unroll: usize,
    /// Call-graph cycle unroll depth (paper: 2).
    pub recursion_unroll: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            loop_unroll: 2,
            recursion_unroll: 2,
        }
    }
}

/// Any failure of the [`compile`] pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical or syntactic error.
    Parse(parser::ParseError),
    /// Unknown callee while building the call graph.
    CallGraph(callgraph::CallGraphError),
    /// Name-resolution or arity error during lowering.
    Lower(lower::LowerError),
    /// The produced IR violated an invariant (a bug in this crate).
    Validate(validate::ValidateError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::CallGraph(e) => e.fmt(f),
            CompileError::Lower(e) => e.fmt(f),
            CompileError::Validate(e) => e.fmt(f),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::CallGraph(e) => Some(e),
            CompileError::Lower(e) => Some(e),
            CompileError::Validate(e) => Some(e),
        }
    }
}

impl From<parser::ParseError> for CompileError {
    fn from(e: parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<callgraph::CallGraphError> for CompileError {
    fn from(e: callgraph::CallGraphError) -> Self {
        CompileError::CallGraph(e)
    }
}

impl From<lower::LowerError> for CompileError {
    fn from(e: lower::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<validate::ValidateError> for CompileError {
    fn from(e: validate::ValidateError) -> Self {
        CompileError::Validate(e)
    }
}

/// Compiles surface source text all the way to validated core SSA:
/// parse → unroll recursion → lower (unroll loops, gate, single-exit) →
/// validate.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first failing stage.
pub fn compile(src: &str, options: CompileOptions) -> Result<Program, CompileError> {
    let mut interner = Interner::new();
    let surface = parser::parse(src, &mut interner)?;
    compile_ast(&surface, &mut interner, options)
}

/// Compiles an already-parsed surface program (used by the workload
/// generator, which builds ASTs directly).
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first failing stage.
pub fn compile_ast(
    surface: &ast::Program,
    interner: &mut Interner,
    options: CompileOptions,
) -> Result<Program, CompileError> {
    let surface = callgraph::unroll_recursion(surface, interner, options.recursion_unroll)?;
    let program = lower::lower(
        &surface,
        interner,
        lower::LowerOptions {
            loop_unroll: options.loop_unroll,
        },
    )?;
    validate::validate(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline_smoke() {
        let p = compile(
            "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }",
            CompileOptions::default(),
        )
        .expect("compile");
        // fib, fib#1, fib#stub
        assert_eq!(p.functions.len(), 3);
        assert!(p.func_by_name("fib#stub").unwrap().is_extern);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(matches!(
            compile("fn {", CompileOptions::default()),
            Err(CompileError::Parse(_))
        ));
    }

    #[test]
    fn compile_reports_lower_errors() {
        assert!(matches!(
            compile("fn f() { return zz; }", CompileOptions::default()),
            Err(CompileError::Lower(_))
        ));
    }
}

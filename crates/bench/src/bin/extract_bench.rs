//! `extract_bench` — the e-graph extraction harness (`BENCH_extract.json`).
//!
//! Shaped after the extraction-gym benchmark protocol: a fixed corpus of
//! solver queries is replayed once per extraction strategy, and every
//! strategy's row reports the same columns (preprocessed DAG size — the
//! terms that reach bit-blasting — CNF clauses, verdict tallies, best-of
//! wall) so strategies are directly comparable. The strategy rows are:
//!
//! * **no-egraph** — the baseline: equality saturation disabled, the
//!   preprocessor alone simplifies each query;
//! * one row per [`ExtractorKind`] — saturate each local condition in the
//!   e-graph, lower it back with that cost-based extractor.
//!
//! Verdicts are asserted identical across all strategies per query, and an
//! end-to-end scan (egraph on vs off) must produce byte-identical reports —
//! simplification may never change findings, only the work needed to reach
//! them (§3.2.3; conditions are simplified per fragment, never cached as
//! path conditions, §3.2.2).
//!
//! Output: `BENCH_extract.json` in the working directory (override with
//! `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process exits
//! non-zero unless the default strategy bit-blasts strictly fewer terms
//! AND strictly fewer CNF clauses than the baseline, all verdicts and
//! reports agree, and wall stays within 110% of the baseline.

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions, Feasibility};
use fusion::graph_solver::FusionSolver;
use fusion::propagate::{discover, Candidate, PropagateOptions};
use fusion_bench::{banner, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_pdg::slice::compute_slice;
use fusion_pdg::translate::{translate, TranslateOptions};
use fusion_smt::solver::{smt_solve, SatResult, SolverConfig};
use fusion_smt::term::TermPool;
use fusion_smt::{EGraphConfig, ExtractorKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of iterations for the wall measurement.
const ITERS: usize = 3;

/// Aggregate counters for one extraction strategy over the whole corpus.
#[derive(Debug, Default, Clone, Copy)]
struct StrategyTotals {
    wall_us: u128,
    size_before: u64,
    size_after: u64,
    cnf_clauses: u64,
    queries: u64,
    sat: u64,
    unsat: u64,
    unknown: u64,
    egraph_classes: u64,
    egraph_rewrites: u64,
    egraph_saturated: u64,
    egraph_cap_hits: u64,
}

/// The Fig. 1 running example.
const FIG1: &str = "extern fn deref(p);\n\
    fn bar(x) { let y = x * 2; let z = y; return z; }\n\
    fn foo(a, b) {\n\
      let pp = null;\n\
      let c = bar(a);\n\
      let d = bar(b);\n\
      let r = 1;\n\
      if (c < d) { r = pp; }\n\
      deref(r);\n\
      return 0;\n\
    }";

/// Guards with algebraic redundancy only equality saturation removes.
/// The classical pipeline already folds constants, propagates equalities,
/// and Gauss-eliminates anything *linear* — so the wins here are all
/// nonlinear: the same product built under two associations converges to
/// one e-class (one multiplier blasted instead of two), and multiplies by
/// small non-power-of-two constants decompose into sums of shifts
/// (popcount−1 adders instead of a w-step multiplier). Parity guards
/// keep the refutation path honest: their candidates must stay suppressed
/// with the e-graph on.
fn algebra_source(funcs: usize) -> String {
    let mut s = String::from("extern fn deref(p);\n");
    for f in 0..funcs {
        let _ = writeln!(s, "fn alg{f}(x, y, z) {{");
        let k1 = 40 + f;
        let k2 = 77 + 2 * f;
        let parity = 7 + 2 * f;
        // Same nonlinear product, two associations: (x·y)·z vs x·(y·z).
        let _ = writeln!(s, "  let p = x * y * z;");
        let _ = writeln!(s, "  let t = y * z;");
        let _ = writeln!(s, "  let q = x * t;");
        let _ = writeln!(
            s,
            "  let q0 = null; let r0 = 1; \
             if (p + 5 == q + {k1}) {{ r0 = q0; }} deref(r0);"
        );
        // Constant multiply with popcount 2: ×6 = (·<<2) + (·<<1).
        let _ = writeln!(
            s,
            "  let q1 = null; let r1 = 1; \
             if (x * 6 + y == {k2}) {{ r1 = q1; }} deref(r1);"
        );
        // Parity refutation: 4x is even, 2x + odd is odd.
        let _ = writeln!(
            s,
            "  let q2 = null; let r2 = 1; \
             if (x * 4 + 0 == x + x + {parity}) {{ r2 = q2; }} deref(r2);"
        );
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

/// One corpus entry: a compiled program, its PDG, and its query stream
/// (every path of every candidate, discovery order).
struct Entry {
    name: &'static str,
    program: Program,
    pdg: Pdg,
    candidates: Vec<Candidate>,
}

fn corpus() -> Vec<Entry> {
    let checker = Checker::null_deref();
    let mut entries = Vec::new();
    let mut push_src = |name: &'static str, src: &str| {
        let program = compile(src, CompileOptions::default()).expect("corpus compiles");
        let pdg = Pdg::build(&program);
        let candidates = discover(&program, &pdg, &checker, &PropagateOptions::default());
        entries.push(Entry {
            name,
            program,
            pdg,
            candidates,
        });
    };
    push_src("fig1", FIG1);
    let alg = algebra_source(5);
    push_src("algebra", &alg);
    entries
}

/// Replays the full corpus query stream under one solver configuration.
/// Counters come from a single pass; wall is best-of-`ITERS` passes.
fn run_strategy(entries: &[Entry], budget: &SolverConfig) -> (StrategyTotals, Vec<SatResult>) {
    let opts = TranslateOptions::default();
    let mut totals = StrategyTotals::default();
    let mut verdicts = Vec::new();
    for entry in entries {
        for cand in &entry.candidates {
            for path in &cand.paths {
                let path = std::slice::from_ref(path);
                let slice = compute_slice(&entry.program, &entry.pdg, path);
                let mut pool = TermPool::new();
                let Ok(tr) = translate(&entry.program, &slice, &mut pool, &opts) else {
                    verdicts.push(SatResult::Unknown);
                    continue;
                };
                let (r, stats) = smt_solve(&mut pool, tr.formula, budget);
                totals.size_before += stats.size_before as u64;
                totals.size_after += stats.size_after as u64;
                totals.cnf_clauses += stats.cnf_clauses as u64;
                totals.egraph_classes += stats.egraph.classes;
                totals.egraph_rewrites += stats.egraph.rewrites;
                totals.egraph_saturated += stats.egraph.saturated;
                totals.egraph_cap_hits += stats.egraph.cap_hits;
                totals.queries += 1;
                match r {
                    SatResult::Sat(_) => totals.sat += 1,
                    SatResult::Unsat => totals.unsat += 1,
                    SatResult::Unknown => totals.unknown += 1,
                }
                verdicts.push(r);
            }
        }
    }
    let mut best_us = u128::MAX;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        for entry in entries {
            for cand in &entry.candidates {
                for path in &cand.paths {
                    let path = std::slice::from_ref(path);
                    let slice = compute_slice(&entry.program, &entry.pdg, path);
                    let mut pool = TermPool::new();
                    if let Ok(tr) = translate(&entry.program, &slice, &mut pool, &opts) {
                        let _ = smt_solve(&mut pool, tr.formula, budget);
                    }
                }
            }
        }
        best_us = best_us.min(t0.elapsed().as_micros());
    }
    totals.wall_us = best_us;
    (totals, verdicts)
}

fn budget_with(egraph: EGraphConfig) -> SolverConfig {
    let mut cfg = default_budget();
    cfg.egraph = egraph;
    cfg
}

fn same_verdict(a: &SatResult, b: &SatResult) -> bool {
    matches!(
        (a, b),
        (SatResult::Sat(_), SatResult::Sat(_))
            | (SatResult::Unsat, SatResult::Unsat)
            | (SatResult::Unknown, SatResult::Unknown)
    )
}

fn main() {
    banner(
        "extract_bench: e-graph extraction strategies vs no-egraph baseline",
        "same query stream per strategy; verdicts and scan reports asserted identical",
    );
    let entries = corpus();

    // ---- baseline: equality saturation off ----
    let (off, off_verdicts) = run_strategy(&entries, &budget_with(EGraphConfig::disabled()));

    // ---- one row per extractor ----
    let mut rows: Vec<(&'static str, StrategyTotals)> = vec![("no-egraph", off)];
    let default_kind = ExtractorKind::default();
    let mut default_row = off;
    for kind in ExtractorKind::ALL {
        let eg = EGraphConfig {
            enabled: true,
            extractor: kind,
            ..EGraphConfig::default()
        };
        let (on, on_verdicts) = run_strategy(&entries, &budget_with(eg));
        assert_eq!(off_verdicts.len(), on_verdicts.len(), "stream length drift");
        for (i, (a, b)) in off_verdicts.iter().zip(&on_verdicts).enumerate() {
            assert!(
                same_verdict(a, b),
                "query {i} verdict mismatch: no-egraph={a:?} {}={b:?}",
                kind.name()
            );
        }
        if kind == default_kind {
            default_row = on;
        }
        rows.push((kind.name(), on));
    }

    // ---- end-to-end scan: egraph on vs off must report identically ----
    let checker = Checker::null_deref();
    let mut reports_identical = true;
    for entry in &entries {
        let run_scan = |enabled: bool| {
            let eg = EGraphConfig {
                enabled,
                ..EGraphConfig::default()
            };
            let mut engine = FusionSolver::new(budget_with(eg));
            analyze(
                &entry.program,
                &entry.pdg,
                &checker,
                &mut engine,
                &AnalysisOptions::without_cache(),
            )
        };
        let run_on = run_scan(true);
        let run_off = run_scan(false);
        let key =
            |r: &fusion::engine::BugReport| (r.source, r.sink, r.verdict, r.path.nodes.clone());
        let a: Vec<_> = run_on.reports.iter().map(key).collect();
        let b: Vec<_> = run_off.reports.iter().map(key).collect();
        if a != b || run_on.suppressed != run_off.suppressed {
            reports_identical = false;
        }
        println!(
            "  {:<10} reports={} feasible={} suppressed={} (identical: {})",
            entry.name,
            run_on.reports.len(),
            run_on
                .reports
                .iter()
                .filter(|r| r.verdict == Feasibility::Feasible)
                .count(),
            run_on.suppressed,
            a == b,
        );
    }

    println!("--------------------------------------------------------------");
    for (name, t) in &rows {
        println!(
            "{:<16} wall={:>9.3}ms blasted-terms={:<7} clauses={:<7} \
             classes={:<6} rewrites={:<6} sat/unsat/unk={}/{}/{}",
            name,
            t.wall_us as f64 / 1000.0,
            t.size_after,
            t.cnf_clauses,
            t.egraph_classes,
            t.egraph_rewrites,
            t.sat,
            t.unsat,
            t.unknown,
        );
    }
    let pct = |off: u64, on: u64| -> f64 {
        if off == 0 {
            0.0
        } else {
            100.0 * (off as f64 - on as f64) / off as f64
        }
    };
    println!(
        "default ({}): blasted-terms -{:.1}% | clauses -{:.1}% vs no-egraph",
        default_kind.name(),
        pct(off.size_after, default_row.size_after),
        pct(off.cnf_clauses, default_row.cnf_clauses),
    );

    let row_json = |t: &StrategyTotals| -> String {
        format!(
            "{{\"wall_us\": {}, \"size_before\": {}, \"size_after\": {}, \
             \"cnf_clauses\": {}, \"queries\": {}, \"sat\": {}, \"unsat\": {}, \
             \"unknown\": {}, \"egraph_classes\": {}, \"egraph_rewrites\": {}, \
             \"egraph_saturated\": {}, \"egraph_cap_hits\": {}}}",
            t.wall_us,
            t.size_before,
            t.size_after,
            t.cnf_clauses,
            t.queries,
            t.sat,
            t.unsat,
            t.unknown,
            t.egraph_classes,
            t.egraph_rewrites,
            t.egraph_saturated,
            t.egraph_cap_hits,
        )
    };
    let mut strategies = String::new();
    for (i, (name, t)) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { ",\n    " };
        let _ = write!(strategies, "{sep}{{\"name\": \"{name}\", ");
        let row = row_json(t);
        strategies.push_str(&row[1..]);
    }
    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": 1,\n  \"iters\": {ITERS},\n  \
         \"default_strategy\": \"{}\",\n  \"strategies\": [\n    {strategies}\n  ],\n  \
         \"reduction\": {{\"blasted_terms_pct\": {:.2}, \"clauses_pct\": {:.2}}},\n  \
         \"reports_identical\": {reports_identical}\n}}\n",
        scale_from_env(),
        default_kind.name(),
        pct(off.size_after, default_row.size_after),
        pct(off.cnf_clauses, default_row.cnf_clauses),
    );
    report::write("BENCH_extract.json", &json);

    // CI gates: the default extractor must shrink real work — strictly
    // fewer bit-blasted terms AND strictly fewer CNF clauses than the
    // no-egraph baseline — while the scan reports stay byte-identical
    // and wall stays within 110% of the baseline.
    let gate = report::Gate::from_env();
    gate.require(default_row.size_after < off.size_after, || {
        format!(
            "default extractor bit-blasted {} terms, no-egraph baseline {}",
            default_row.size_after, off.size_after
        )
    });
    gate.require(default_row.cnf_clauses < off.cnf_clauses, || {
        format!(
            "default extractor produced {} CNF clauses, no-egraph baseline {}",
            default_row.cnf_clauses, off.cnf_clauses
        )
    });
    gate.require(reports_identical, || {
        "egraph-on scan reports differ from egraph-off".into()
    });
    gate.require(
        default_row.wall_us as f64 <= off.wall_us as f64 * 1.10,
        || {
            format!(
                "default extractor wall {}us exceeds 110% of no-egraph wall {}us",
                default_row.wall_us, off.wall_us
            )
        },
    );
    gate.pass(
        "default extractor blasted fewer terms and clauses, reports identical, \
         wall within 110% of baseline",
    );
}

//! Lexer and recursive-descent parser for the surface language.
//!
//! The concrete syntax is a small C-like notation for the Fig. 4 language:
//!
//! ```text
//! extern fn gets();
//! fn bar(x) { let y = x * 2; let z = y; return z; }
//! fn foo(a, b) {
//!     let p = null;
//!     let c = bar(a);
//!     let d = bar(b);
//!     if (c < d) { return p; }
//!     return 1;
//! }
//! ```
//!
//! # Errors
//!
//! All entry points return [`ParseError`] with a line/column position and a
//! human-readable message on malformed input.

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
use crate::interner::{Interner, Symbol};
use std::error::Error;
use std::fmt;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    KwFn,
    KwExtern,
    KwLet,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwNull,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Assign,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($t:expr, $l:expr, $c:expr) => {
            toks.push(SpannedTok {
                tok: $t,
                line: $l,
                col: $c,
            })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        let adv = |i: &mut usize, n: usize, col: &mut u32| {
            *i += n;
            *col += n as u32;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => adv(&mut i, 1, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            ')' => {
                push!(Tok::RParen, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '{' => {
                push!(Tok::LBrace, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '}' => {
                push!(Tok::RBrace, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            ',' => {
                push!(Tok::Comma, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            ';' => {
                push!(Tok::Semi, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '+' => {
                push!(Tok::Plus, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '-' => {
                push!(Tok::Minus, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '*' => {
                push!(Tok::Star, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '/' => {
                push!(Tok::Slash, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '%' => {
                push!(Tok::Percent, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '^' => {
                push!(Tok::Caret, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '~' => {
                push!(Tok::Tilde, tl, tc);
                adv(&mut i, 1, &mut col)
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push!(Tok::AndAnd, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Amp, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push!(Tok::OrOr, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Pipe, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ne, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Bang, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    push!(Tok::Shl, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Lt, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Shr, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Gt, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq, tl, tc);
                    adv(&mut i, 2, &mut col)
                } else {
                    push!(Tok::Assign, tl, tc);
                    adv(&mut i, 1, &mut col)
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                let value: i64 = text.parse().map_err(|_| ParseError {
                    line: tl,
                    col: tc,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                push!(Tok::Int(value), tl, tc);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'#'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                let t = match text {
                    "fn" => Tok::KwFn,
                    "extern" => Tok::KwExtern,
                    "let" => Tok::KwLet,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "return" => Tok::KwReturn,
                    "null" => Tok::KwNull,
                    _ => Tok::Ident(text.to_owned()),
                };
                push!(t, tl, tc);
            }
            other => {
                return Err(ParseError {
                    line: tl,
                    col: tc,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    interner: &'a mut Interner,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = &self.toks[self.pos.min(self.toks.len() - 1)];
        ParseError {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Symbol, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(self.interner.intern(&name))
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        while *self.peek() != Tok::Eof {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let is_extern = if *self.peek() == Tok::KwExtern {
            self.bump();
            true
        } else {
            false
        };
        self.expect(Tok::KwFn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident("parameter name")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let body = if is_extern {
            self.expect(Tok::Semi, "`;` after extern declaration")?;
            Vec::new()
        } else {
            self.block()?
        };
        Ok(Function {
            name,
            params,
            body,
            is_extern,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // RBrace
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::KwLet => {
                self.bump();
                let name = self.ident("binding name")?;
                self.expect(Tok::Assign, "`=`")?;
                let e = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Let(name, e))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let c = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                let then_b = self.block()?;
                let else_b = if *self.peek() == Tok::KwElse {
                    self.bump();
                    if *self.peek() == Tok::KwIf {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then_b, else_b))
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let c = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While(c, body))
            }
            Tok::KwReturn => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return(e))
            }
            Tok::Ident(name) if self.toks[self.pos + 1].tok == Tok::Assign => {
                self.bump();
                self.bump();
                let sym = self.interner.intern(&name);
                let e = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Assign(sym, e))
            }
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    /// Precedence-climbing binary expression parser. Levels, loosest first:
    /// `||`, `&&`, `|`, `^`, `&`, `== !=`, `< <= > >=`, `<< >>`, `+ -`,
    /// `* / %`.
    fn bin_expr(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (level, op) = match self.peek() {
                Tok::OrOr => (0, BinOp::Or),
                Tok::AndAnd => (1, BinOp::And),
                Tok::Pipe => (2, BinOp::BitOr),
                Tok::Caret => (3, BinOp::BitXor),
                Tok::Amp => (4, BinOp::BitAnd),
                Tok::EqEq => (5, BinOp::Eq),
                Tok::Ne => (5, BinOp::Ne),
                Tok::Lt => (6, BinOp::Lt),
                Tok::Le => (6, BinOp::Le),
                Tok::Gt => (6, BinOp::Gt),
                Tok::Ge => (6, BinOp::Ge),
                Tok::Shl => (7, BinOp::Shl),
                Tok::Shr => (7, BinOp::Shr),
                Tok::Plus => (8, BinOp::Add),
                Tok::Minus => (8, BinOp::Sub),
                Tok::Star => (9, BinOp::Mul),
                Tok::Slash => (9, BinOp::Div),
                Tok::Percent => (9, BinOp::Rem),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(level + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(Expr::un(UnOp::Not, self.unary()?))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::un(UnOp::Neg, self.unary()?))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::un(UnOp::BitNot, self.unary()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                let sym = self.interner.intern(&name);
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call(sym, args))
                } else {
                    Ok(Expr::Var(sym))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a whole program, interning names into `interner`.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic problem.
///
/// # Examples
///
/// ```
/// use fusion_ir::interner::Interner;
/// use fusion_ir::parser::parse;
///
/// let mut interner = Interner::new();
/// let prog = parse("fn id(x) { return x; }", &mut interner)?;
/// assert_eq!(prog.functions.len(), 1);
/// # Ok::<(), fusion_ir::parser::ParseError>(())
/// ```
pub fn parse(src: &str, interner: &mut Interner) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    p.program()
}

/// Parses a single expression (useful in tests).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str, interner: &mut Interner) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        interner,
    };
    let e = p.expr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    fn parse_ok(src: &str) -> (Program, Interner) {
        let mut i = Interner::new();
        let p = parse(src, &mut i).expect("parse");
        (p, i)
    }

    #[test]
    fn parses_figure_1_program() {
        let (p, i) = parse_ok(
            "fn bar(x) { let y = x * 2; let z = y; return z; }\n\
             fn foo(a, b) {\n\
               let p = null;\n\
               let c = bar(a);\n\
               let d = bar(b);\n\
               if (c < d) { return p; }\n\
               return 1;\n\
             }",
        );
        assert_eq!(p.functions.len(), 2);
        let foo = p.function(i.lookup("foo").unwrap()).unwrap();
        assert_eq!(foo.params.len(), 2);
        assert_eq!(foo.body.len(), 5);
    }

    #[test]
    fn parses_extern_declaration() {
        let (p, _) = parse_ok("extern fn gets(); extern fn fopen(path);");
        assert!(p.functions.iter().all(|f| f.is_extern));
        assert_eq!(p.functions[1].params.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let mut i = Interner::new();
        let e = parse_expr("1 + 2 * 3", &mut i).unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::Int(1),
                Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn precedence_comparison_vs_logic() {
        let mut i = Interner::new();
        let e = parse_expr("a < b && c < d", &mut i).unwrap();
        match e {
            Expr::Binary(BinOp::And, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Lt, _, _)));
                assert!(matches!(*r, Expr::Binary(BinOp::Lt, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let (p, _) = parse_ok(
            "fn f(x) { if (x) { return 1; } else if (x > 1) { return 2; } else { return 3; } }",
        );
        match &p.functions[0].body[0] {
            Stmt::If(_, _, else_b) => {
                assert_eq!(else_b.len(), 1);
                assert!(matches!(else_b[0], Stmt::If(_, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn while_and_comments() {
        let (p, _) = parse_ok(
            "// leading comment\nfn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }",
        );
        assert!(matches!(p.functions[0].body[1], Stmt::While(_, _)));
    }

    #[test]
    fn error_reports_position() {
        let mut i = Interner::new();
        let err = parse("fn f( { }", &mut i).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("parameter name"));
    }

    #[test]
    fn error_on_unterminated_block() {
        let mut i = Interner::new();
        let err = parse("fn f() { let x = 1;", &mut i).unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn rejects_huge_int_literal() {
        let mut i = Interner::new();
        assert!(parse("fn f() { return 99999999999999999999; }", &mut i).is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let mut i = Interner::new();
        let e = parse_expr("!!x", &mut i).unwrap();
        assert!(matches!(e, Expr::Unary(crate::ast::UnOp::Not, _)));
    }

    #[test]
    fn call_with_no_args_and_nested_calls() {
        let mut i = Interner::new();
        let e = parse_expr("f(g(), h(1, 2))", &mut i).unwrap();
        match e {
            Expr::Call(_, args) => assert_eq!(args.len(), 2),
            other => panic!("bad parse: {other:?}"),
        }
    }
}

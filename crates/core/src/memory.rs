//! Categorized memory accounting.
//!
//! The paper's evaluation is as much about *memory* as about time: Fig. 1(c)
//! shows path conditions taking ≥72% of a conventional analyzer's RSS, and
//! Tables 3–5 report per-run memory. Rather than sampling process RSS (noisy
//! and allocator-dependent), every analysis engine in this reproduction
//! charges an accountant for the bytes it *retains*, per category, and the
//! peak per category is what the benchmark harnesses report.

use std::fmt;

/// What a retained byte is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Computed path conditions (formula nodes retained by an engine).
    PathConditions,
    /// Cached function summaries (Pinpoint-style `(π, tr, φ)` triples).
    Summaries,
    /// The program dependence graph / IR itself.
    Graph,
    /// Transient solver state (CNF, SAT solver).
    SolverState,
    /// The shared feasibility-verdict cache (see `crate::cache`).
    Cache,
}

/// All categories, for iteration.
pub const CATEGORIES: [Category; 5] = [
    Category::PathConditions,
    Category::Summaries,
    Category::Graph,
    Category::SolverState,
    Category::Cache,
];

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::PathConditions => "path-conditions",
            Category::Summaries => "summaries",
            Category::Graph => "graph",
            Category::SolverState => "solver-state",
            Category::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// Approximate bytes per hash-consed term node (kind + sort + consing
/// entry); used to convert node counts to bytes uniformly across engines.
pub const BYTES_PER_TERM_NODE: u64 = 48;

/// Approximate bytes per IR definition (kind + guard + name + adjacency).
pub const BYTES_PER_DEF: u64 = 64;

/// Tracks current and peak retained bytes per category.
#[derive(Debug, Clone, Default)]
pub struct MemoryAccountant {
    current: [u64; CATEGORIES.len()],
    peak: [u64; CATEGORIES.len()],
}

impl MemoryAccountant {
    /// A fresh accountant with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(cat: Category) -> usize {
        CATEGORIES
            .iter()
            .position(|c| *c == cat)
            .expect("category listed")
    }

    /// Records `bytes` newly retained in `cat`.
    pub fn charge(&mut self, cat: Category, bytes: u64) {
        let i = Self::idx(cat);
        self.current[i] += bytes;
        if self.current[i] > self.peak[i] {
            self.peak[i] = self.current[i];
        }
    }

    /// Records `bytes` released from `cat` (saturating).
    pub fn release(&mut self, cat: Category, bytes: u64) {
        let i = Self::idx(cat);
        self.current[i] = self.current[i].saturating_sub(bytes);
    }

    /// Sets the current retained amount of `cat` absolutely (for counters
    /// observed from outside, e.g. a term pool's node count).
    pub fn set(&mut self, cat: Category, bytes: u64) {
        let i = Self::idx(cat);
        self.current[i] = bytes;
        if bytes > self.peak[i] {
            self.peak[i] = bytes;
        }
    }

    /// Currently retained bytes in `cat`.
    pub fn current(&self, cat: Category) -> u64 {
        self.current[Self::idx(cat)]
    }

    /// Peak retained bytes in `cat`.
    pub fn peak(&self, cat: Category) -> u64 {
        self.peak[Self::idx(cat)]
    }

    /// Peak of the sum across categories observed so far (conservative:
    /// sums per-category peaks, an upper bound on the true joint peak).
    pub fn peak_total(&self) -> u64 {
        self.peak.iter().sum()
    }

    /// Share of the peak total attributed to `cat`, in `[0, 1]`.
    pub fn peak_share(&self, cat: Category) -> f64 {
        let total = self.peak_total();
        if total == 0 {
            0.0
        } else {
            self.peak(cat) as f64 / total as f64
        }
    }

    /// Merges another accountant's peaks (e.g. from a sub-run).
    pub fn absorb(&mut self, other: &MemoryAccountant) {
        for (i, _) in CATEGORIES.iter().enumerate() {
            self.peak[i] = self.peak[i].max(other.peak[i]);
            self.current[i] += other.current[i];
        }
    }

    /// Adds another accountant that was live *concurrently* with this one
    /// (e.g. a parallel worker's engine): both currents and peaks sum,
    /// because the two retained their memory at the same time.
    pub fn add_concurrent(&mut self, other: &MemoryAccountant) {
        for (i, _) in CATEGORIES.iter().enumerate() {
            self.peak[i] += other.peak[i];
            self.current[i] += other.current[i];
        }
    }
}

/// The single accounting path every analysis run goes through, sequential
/// or parallel: sum the engine accountants that were live concurrently
/// (one for a sequential run, one per worker for a parallel run), then
/// charge the structures retained for the whole run — the PDG/IR under
/// [`Category::Graph`] and the shared verdict cache under
/// [`Category::Cache`] — into both current and peak, since they coexist
/// with every engine's peak.
///
/// Using one function for both drivers keeps the sequential and parallel
/// peak numbers directly comparable: a 1-thread parallel run reports
/// exactly the same peak as the sequential run with the same engine.
///
/// The fused multi-client drivers also route through here, so a
/// `--checker all` scan reports one *true whole-scan peak* — every
/// engine accountant that was live during the single fused pass, plus
/// the graph and caches charged once — rather than the max over three
/// independent per-checker passes (which would under-count nothing but
/// also share nothing).
pub fn run_accounting<'a>(
    engines: impl IntoIterator<Item = &'a MemoryAccountant>,
    graph_bytes: u64,
    cache_bytes: u64,
) -> MemoryAccountant {
    let mut acct = MemoryAccountant::new();
    for engine in engines {
        acct.add_concurrent(engine);
    }
    let gi = MemoryAccountant::idx(Category::Graph);
    acct.current[gi] += graph_bytes;
    acct.peak[gi] += graph_bytes;
    let ci = MemoryAccountant::idx(Category::Cache);
    acct.current[ci] += cache_bytes;
    acct.peak[ci] += cache_bytes;
    acct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_tracks_peak() {
        let mut m = MemoryAccountant::new();
        m.charge(Category::PathConditions, 100);
        m.charge(Category::PathConditions, 50);
        m.release(Category::PathConditions, 120);
        assert_eq!(m.current(Category::PathConditions), 30);
        assert_eq!(m.peak(Category::PathConditions), 150);
    }

    #[test]
    fn set_updates_peak() {
        let mut m = MemoryAccountant::new();
        m.set(Category::SolverState, 10);
        m.set(Category::SolverState, 500);
        m.set(Category::SolverState, 5);
        assert_eq!(m.current(Category::SolverState), 5);
        assert_eq!(m.peak(Category::SolverState), 500);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut m = MemoryAccountant::new();
        m.charge(Category::PathConditions, 720);
        m.charge(Category::Graph, 280);
        let s: f64 = CATEGORIES.iter().map(|&c| m.peak_share(c)).sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!((m.peak_share(Category::PathConditions) - 0.72).abs() < 1e-9);
    }

    #[test]
    fn release_saturates() {
        let mut m = MemoryAccountant::new();
        m.charge(Category::Summaries, 10);
        m.release(Category::Summaries, 100);
        assert_eq!(m.current(Category::Summaries), 0);
    }

    #[test]
    fn run_accounting_one_engine_equals_engine_plus_shared() {
        // One engine (the sequential case, or a 1-thread parallel run):
        // the run's peak is exactly the engine's peak plus the structures
        // retained for the whole run.
        let mut e = MemoryAccountant::new();
        e.charge(Category::SolverState, 100);
        e.release(Category::SolverState, 100);
        e.charge(Category::Summaries, 40);
        let run = run_accounting(std::iter::once(&e), 1000, 64);
        assert_eq!(run.peak_total(), e.peak_total() + 1000 + 64);
        assert_eq!(run.peak(Category::Graph), 1000);
        assert_eq!(run.peak(Category::Cache), 64);
        assert_eq!(run.current(Category::Cache), 64);
    }

    #[test]
    fn run_accounting_sums_concurrent_workers() {
        // N workers live at once: their peaks sum; the graph and cache are
        // charged once, not per worker.
        let mut w1 = MemoryAccountant::new();
        w1.charge(Category::SolverState, 70);
        let mut w2 = MemoryAccountant::new();
        w2.charge(Category::SolverState, 30);
        let run = run_accounting([&w1, &w2], 500, 16);
        assert_eq!(run.peak(Category::SolverState), 100);
        assert_eq!(run.peak(Category::Graph), 500);
        assert_eq!(run.peak(Category::Cache), 16);
        assert_eq!(run.peak_total(), 100 + 500 + 16);
    }
}

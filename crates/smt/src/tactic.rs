//! Heavyweight tactics used by the Pinpoint baseline variants.
//!
//! The paper's evaluation arms Pinpoint with three Z3 tactics to try to tame
//! condition growth:
//!
//! * **QE** (`qe`) — quantifier elimination of callee-internal variables
//!   from summaries ([`quantifier_eliminate`]). Bit-level Shannon expansion
//!   is doubly-exponential-prone; exactly as the paper observes, it "may
//!   take a lot of time but notably enlarge the condition size", so the
//!   implementation carries a hard node budget and reports blow-ups.
//! * **LFS** (`simplify`) — local rewriting; this is
//!   [`crate::preprocess::simplify`].
//! * **HFS** (`ctx-solver-simplify`) — context-dependent simplification
//!   that calls the solver per subterm ([`ctx_solver_simplify`]); cheap on
//!   formulas, expensive in solver calls, again mirroring the evaluation.

use crate::solver::{smt_solve, SolverConfig};
use crate::term::{BvOp, Sort, TermId, TermKind, TermPool, VarIdx};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// QE exceeded its node budget — the formula blew up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QeBlowup {
    /// Nodes allocated when the budget tripped.
    pub nodes: usize,
    /// The configured budget.
    pub budget: usize,
}

impl fmt::Display for QeBlowup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantifier elimination exceeded its node budget ({} > {})",
            self.nodes, self.budget
        )
    }
}

impl Error for QeBlowup {}

/// Eliminates the existentially quantified `vars` from `formula`.
///
/// Strategy: first `solve-eqs` (substitute variables defined by a top-level
/// equality — cheap); remaining variables are eliminated by bit-level
/// Shannon expansion `∃x.φ ≡ ∃x'. φ[x := 2x'] ∨ φ[x := 2x'+1]`, which
/// doubles the formula per bit and is the deliberate blow-up the paper
/// measures.
///
/// # Errors
///
/// Returns [`QeBlowup`] when the working formula's DAG exceeds
/// `node_budget`.
pub fn quantifier_eliminate(
    pool: &mut TermPool,
    formula: TermId,
    vars: &[VarIdx],
    node_budget: usize,
) -> Result<TermId, QeBlowup> {
    quantifier_eliminate_impl(pool, formula, vars, node_budget, true)
}

/// [`quantifier_eliminate`] without the solve-eqs fast path: pure bit-level
/// Shannon expansion, as the bit-vector `qe` tactic of the Z3 version the
/// paper used behaves. This is the variant whose blow-ups the evaluation
/// observes (Pinpoint+QE exhausting memory on all but the smallest
/// subject).
///
/// # Errors
///
/// Returns [`QeBlowup`] when the working formula's DAG exceeds
/// `node_budget` — which, for 32-bit variables not eliminated by
/// simplification, is the common case.
pub fn quantifier_eliminate_expansion(
    pool: &mut TermPool,
    formula: TermId,
    vars: &[VarIdx],
    node_budget: usize,
) -> Result<TermId, QeBlowup> {
    quantifier_eliminate_impl(pool, formula, vars, node_budget, false)
}

fn quantifier_eliminate_impl(
    pool: &mut TermPool,
    formula: TermId,
    vars: &[VarIdx],
    node_budget: usize,
    solve_eqs: bool,
) -> Result<TermId, QeBlowup> {
    // Cheap phase: targeted solve-eqs. Only the *requested* variables may
    // be eliminated — interface variables of a summary must survive — so a
    // defining top-level equality `v = t` (with `v` not free in `t`) is
    // substituted only for `v ∈ vars`.
    let mut t = formula;
    'vars: for &v in vars {
        if !solve_eqs {
            break;
        }
        #[allow(clippy::unnecessary_to_owned)]
        // pool.var needs &mut; the name must be detached first
        let vt = pool.var(&pool.var_name(v).to_owned(), pool.var_sort(v));
        let cs = match pool.kind(t) {
            TermKind::And(xs) => xs.clone(),
            _ => vec![t],
        };
        for c in cs {
            let TermKind::Eq(a, b) = pool.kind(c).clone() else {
                continue;
            };
            let rhs = if a == vt {
                b
            } else if b == vt {
                a
            } else {
                continue;
            };
            if pool.free_vars(rhs).contains(&v) {
                continue;
            }
            let mut m = HashMap::new();
            m.insert(v, rhs);
            t = pool.substitute(t, &m);
            continue 'vars;
        }
    }
    for &v in vars {
        if !pool.free_vars(t).contains(&v) {
            continue; // already gone
        }
        let Sort::Bv(w) = pool.var_sort(v) else {
            // Boolean variable: ∃b.φ ≡ φ[b:=⊤] ∨ φ[b:=⊥].
            let tt = pool.tt();
            let ff = pool.ff();
            let mut m = HashMap::new();
            m.insert(v, tt);
            let a = pool.substitute(t, &m);
            m.insert(v, ff);
            let b = pool.substitute(t, &m);
            t = pool.or2(a, b);
            continue;
        };
        // Shannon expansion, one bit at a time: `∃v.φ` becomes
        // `∃v'. φ[v := 2v' + 0] ∨ φ[v := 2v' + 1]` with a fresh `v'` per
        // round. After `w` rounds the residual variable contributes only
        // `2^w · v_w ≡ 0`, so it is pinned to zero.
        let mut cur = v;
        for round in 0..=w {
            if !pool.free_vars(t).contains(&cur) {
                break;
            }
            let mut m = HashMap::new();
            if round == w {
                let zero = pool.bv_const(0, w);
                m.insert(cur, zero);
                t = pool.substitute(t, &m);
                break;
            }
            let next = pool.fresh_var("qe", Sort::Bv(w));
            let TermKind::Var(next_v) = *pool.kind(next) else {
                unreachable!()
            };
            let one = pool.bv_const(1, w);
            let shifted = pool.bv(BvOp::Shl, next, one);
            let odd = pool.bv(BvOp::Or, shifted, one);
            m.insert(cur, shifted);
            let even_case = pool.substitute(t, &m);
            m.insert(cur, odd);
            let odd_case = pool.substitute(t, &m);
            t = pool.or2(even_case, odd_case);
            cur = next_v;
            let nodes = pool.dag_size(t);
            if nodes > node_budget {
                return Err(QeBlowup {
                    nodes,
                    budget: node_budget,
                });
            }
        }
    }
    Ok(t)
}

/// Statistics from one [`ctx_solver_simplify`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtxSimplifyStats {
    /// Solver calls performed.
    pub solver_calls: u64,
    /// Conjuncts replaced by `true`.
    pub simplified: u64,
    /// Whether the whole formula was shown unsatisfiable.
    pub proved_false: bool,
}

/// Context-dependent simplification (Z3's `ctx-solver-simplify`).
///
/// For each top-level conjunct `cᵢ`, let `C` be the conjunction of the
/// others; if `C ⊨ cᵢ` (checked with a solver call on `C ∧ ¬cᵢ`), then
/// `cᵢ` is redundant and is dropped; if `C ⊨ ¬cᵢ`, the formula is
/// unsatisfiable. Iterates until no conjunct changes. The per-conjunct
/// solver calls are the "extra SMT solving procedures" that make HFS
/// expensive in the paper's evaluation.
pub fn ctx_solver_simplify(
    pool: &mut TermPool,
    formula: TermId,
    per_call: &SolverConfig,
) -> (TermId, CtxSimplifyStats) {
    let mut stats = CtxSimplifyStats::default();
    let mut parts: Vec<TermId> = match pool.kind(formula) {
        TermKind::And(xs) => xs.clone(),
        _ => vec![formula],
    };
    if parts.len() < 2 {
        return (formula, stats);
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 4 {
        changed = false;
        rounds += 1;
        let mut i = 0;
        while i < parts.len() {
            let ci = parts[i];
            let others: Vec<TermId> = parts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &c)| c)
                .collect();
            let context = pool.and(&others);
            // C ⊨ cᵢ ?
            let nci = pool.not(ci);
            let q = pool.and2(context, nci);
            stats.solver_calls += 1;
            let (r, _) = smt_solve(pool, q, per_call);
            if r.is_unsat() {
                stats.simplified += 1;
                parts.remove(i);
                changed = true;
                continue;
            }
            // C ⊨ ¬cᵢ ?
            let q2 = pool.and2(context, ci);
            stats.solver_calls += 1;
            let (r2, _) = smt_solve(pool, q2, per_call);
            if r2.is_unsat() {
                stats.proved_false = true;
                return (pool.ff(), stats);
            }
            i += 1;
        }
    }
    (pool.and(&parts), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BvPred;

    #[test]
    fn qe_via_solve_eqs_is_cheap() {
        // ∃y. y = x + 1 ∧ y < 10  →  x + 1 < 10
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let TermKind::Var(vy) = *p.kind(y) else {
            unreachable!()
        };
        let one = p.bv_const(1, 8);
        let c10 = p.bv_const(10, 8);
        let xp1 = p.bv(BvOp::Add, x, one);
        let def = p.eq(y, xp1);
        let lt = p.pred(BvPred::Ult, y, c10);
        let f = p.and2(def, lt);
        let r = quantifier_eliminate(&mut p, f, &[vy], 10_000).unwrap();
        assert!(!p.free_vars(r).contains(&vy));
    }

    #[test]
    fn qe_bool_expansion() {
        let mut p = TermPool::new();
        let b = p.var("b", Sort::Bool);
        let c = p.var("c", Sort::Bool);
        let TermKind::Var(vb) = *p.kind(b) else {
            unreachable!()
        };
        let f = p.and2(b, c);
        let r = quantifier_eliminate(&mut p, f, &[vb], 10_000).unwrap();
        assert_eq!(r, c); // ∃b. b ∧ c ≡ c
    }

    #[test]
    fn qe_blowup_is_reported() {
        // A variable under a multiplication with another variable cannot be
        // solved by equalities; Shannon expansion must blow the budget.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let z = p.var("z", Sort::Bv(32));
        let TermKind::Var(vx) = *p.kind(x) else {
            unreachable!()
        };
        let prod = p.bv(BvOp::Mul, x, y);
        let lt = p.pred(BvPred::Ult, prod, z);
        let gt = p.pred(BvPred::Ult, z, x);
        let f = p.and2(lt, gt);
        let err = quantifier_eliminate(&mut p, f, &[vx], 200).unwrap_err();
        assert!(err.nodes > err.budget);
    }

    #[test]
    fn ctx_simplify_drops_implied_conjunct() {
        // x < 5 ∧ x < 10: the second conjunct is implied.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c5 = p.bv_const(5, 8);
        let c10 = p.bv_const(10, 8);
        let a = p.pred(BvPred::Ult, x, c5);
        let b = p.pred(BvPred::Ult, x, c10);
        let f = p.and2(a, b);
        let (r, stats) = ctx_solver_simplify(&mut p, f, &SolverConfig::default());
        assert_eq!(r, a);
        assert!(stats.solver_calls >= 2);
        assert_eq!(stats.simplified, 1);
    }

    #[test]
    fn ctx_simplify_detects_contradiction() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c5 = p.bv_const(5, 8);
        let a = p.pred(BvPred::Ult, x, c5);
        let b = p.pred(BvPred::Ult, c5, x);
        let f = p.and2(a, b);
        let (r, stats) = ctx_solver_simplify(&mut p, f, &SolverConfig::default());
        assert_eq!(p.as_bool_const(r), Some(false));
        assert!(stats.proved_false);
    }

    #[test]
    fn ctx_simplify_keeps_independent_conjuncts() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let c5 = p.bv_const(5, 8);
        let a = p.pred(BvPred::Ult, x, c5);
        let b = p.pred(BvPred::Ult, y, c5);
        let f = p.and2(a, b);
        let (r, _) = ctx_solver_simplify(&mut p, f, &SolverConfig::default());
        assert_eq!(r, f);
    }
}

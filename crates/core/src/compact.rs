//! The pre-discovery PDG-compaction pass.
//!
//! The paper's scalability argument (§3.2.3) is to shrink the graph
//! *before* any path-sensitive work begins; the removal-of-redundant-
//! summaries line sharpens it: most summary edges can never lie on any
//! source→sink chain for the active checkers, so walking them is pure
//! waste. [`CompactPdg`] precomputes, per checker of the fused
//! [`CheckerSet`]:
//!
//! 1. **Frontier reachability pruning** — the *live* vertex set: forward
//!    reachable from the checker's sources **and** backward reaching a
//!    sink-trigger vertex, over the checker-taken def-use + summary
//!    edges. Discovery never steps onto a dead vertex; dead subtrees can
//!    record nothing (any recording vertex inside one would be live by
//!    definition), so reports are untouched while every pruned step is a
//!    discovery step saved.
//! 2. **Summary-chain collapse** — single-entry/single-exit
//!    `Enter…Exit` corridors through a callee with no intervening
//!    checker-relevant transfer (no branch in the taken-edge relation,
//!    no sink trigger, no nested call) fold into one
//!    [`SummaryChain`] replayed as a composite edge. The replay pushes
//!    the **original vertex sequence** and the exact CFL state keys the
//!    vertex-by-vertex walk would have used, so recorded paths — and
//!    therefore reports and [`path_set_key`] hashes — stay
//!    byte-identical; only the per-vertex exploration steps disappear.
//! 3. **Isomorphic-fragment dedup** — a canonical content key
//!    ([`CompactPdg::iso_key`]) that renames function and call-site
//!    identities to first-occurrence indices and replaces them with
//!    structural body signatures. Two dependence-path fragments that are
//!    equal modulo such renaming translate to structurally identical
//!    formulas (no name ever reaches the solver), so their feasibility
//!    verdicts coincide and the drivers share them through
//!    [`IsoVerdicts`] — strictly fewer solver queries, same verdicts.
//!
//! Everything cached here is **dependence structure only** — bit sets,
//! vertex sequences, content hashes. No path condition is ever computed
//! or stored, preserving the §3.2.2 discipline the whole reproduction is
//! built around.
//!
//! The caveat shared with every step-budget interaction: pruning and
//! collapsing make discovery *cheaper*, so when
//! [`PropagateOptions::max_steps_per_source`] or
//! [`PropagateOptions::max_path_len`] actually bind, a compacted run can
//! explore further than an uncompacted one before the budget cuts it
//! off. Byte-identical reports are guaranteed whenever the budgets do
//! not bind (the defaults are far above every workload in this repo).
//!
//! [`path_set_key`]: crate::cache::path_set_key

use crate::cache::{Fnv, Key128};
use crate::checkers::{Checker, CheckerId, CheckerSet};
use crate::engine::Feasibility;
use crate::propagate::{source_vertices, PropagateOptions};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program, VarId};
use fusion_pdg::compact::{DenseBitSet, SummaryChain, VertexIndexer};
use fusion_pdg::graph::{FlowTarget, Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};
use std::collections::HashMap;
use std::sync::Mutex;

/// Counters describing how much the compaction pass removed, summed over
/// the checkers of the set (each checker has its own live set and chain
/// table, because "taken" edges are a per-checker notion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Vertices outside some checker's live set (summed per checker).
    pub vertices_pruned: u64,
    /// Checker-taken edges with a dead endpoint (summed per checker).
    pub edges_pruned: u64,
    /// Distinct summary chains collapsed (summed per checker).
    pub chains_collapsed: u64,
}

/// The verdict memo shared between isomorphic path fragments: maps the
/// canonical renaming-invariant key of [`CompactPdg::iso_key`] to the
/// definite verdict the first representative of the class received.
/// [`Feasibility::Unknown`] is never stored (it only reports a budget
/// ran out), so the memo can never turn a would-be-definite query into
/// an Unknown or vice versa: definite verdicts are renaming-invariant,
/// which is what makes the sharing sound.
pub struct IsoVerdicts {
    shards: Vec<Mutex<HashMap<Key128, Feasibility>>>,
}

const ISO_SHARDS: usize = 16;

impl IsoVerdicts {
    fn new() -> IsoVerdicts {
        IsoVerdicts {
            shards: (0..ISO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: Key128) -> &Mutex<HashMap<Key128, Feasibility>> {
        &self.shards[(key.lo as usize) % self.shards.len()]
    }

    /// Looks up the verdict of the isomorphism class.
    pub fn get(&self, key: Key128) -> Option<Feasibility> {
        self.shard(key)
            .lock()
            .expect("iso shard")
            .get(&key)
            .copied()
    }

    /// A point-in-time copy of every memoized class verdict, for
    /// snapshot serialization ([`crate::snapshot`]).
    pub fn entries(&self) -> Vec<(Key128, Feasibility)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("iso shard")
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Stores a definite verdict for the class; Unknown is dropped.
    pub fn insert(&self, key: Key128, verdict: Feasibility) {
        if verdict == Feasibility::Unknown {
            return;
        }
        self.shard(key)
            .lock()
            .expect("iso shard")
            .insert(key, verdict);
    }

    /// Removes the given class keys, returning how many were present.
    /// Unlike verdict-cache eviction this is *garbage collection with
    /// counters*, not a correctness requirement: an iso key embeds the
    /// recursive structural [`body sig`](CompactPdg::iso_key) of every
    /// function a path set touches (and, transitively, their callees),
    /// so an entry recorded against pre-edit content can never be *hit*
    /// by a post-edit query — the edited body hashes to a different
    /// class. The incremental layer still evicts classes whose recorded
    /// provenance involves an edited function so the resident memo does
    /// not accumulate unreachable classes across a long editing session.
    pub fn remove_keys(&self, keys: &[Key128]) -> u64 {
        let mut removed = 0u64;
        for &key in keys {
            if self
                .shard(key)
                .lock()
                .expect("iso shard")
                .remove(&key)
                .is_some()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Number of memoized classes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("iso shard").len())
            .sum()
    }

    /// Whether no class has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One checker's compaction artifacts.
struct CheckerCompact {
    /// Live vertices (forward-reachable from a source ∧ backward-reaching
    /// a sink trigger) over this checker's taken edges.
    live: DenseBitSet,
    /// Collapsed chains keyed by `(call site, callee entry parameter)` —
    /// the parameter matters because a fact entering through a different
    /// argument slot walks a different corridor.
    chains: HashMap<(CallSiteId, VarId), SummaryChain>,
}

/// The compacted view of one `(program, pdg, checker set)` triple,
/// consulted by discovery (liveness filter + chain replay) and by the
/// solve loop (isomorphic verdict sharing). Build it once per run, ahead
/// of `discover_all_multi`; it is `Sync` and shared by reference across
/// discovery shards and solve workers.
pub struct CompactPdg {
    indexer: VertexIndexer,
    per_checker: Vec<CheckerCompact>,
    /// Structural body signature per function (renaming-invariant).
    body_sigs: Vec<Key128>,
    iso: IsoVerdicts,
    stats: CompactStats,
}

impl CompactPdg {
    /// Runs the compaction pass for every checker of the set.
    pub fn build(
        program: &Program,
        pdg: &Pdg,
        set: &CheckerSet,
        opts: &PropagateOptions,
    ) -> CompactPdg {
        let indexer = VertexIndexer::new(program);
        let mut stats = CompactStats::default();
        let mut per_checker = Vec::with_capacity(set.len());
        for (_, checker) in set.iter() {
            per_checker.push(build_checker(
                program, pdg, checker, &indexer, opts, &mut stats,
            ));
        }
        let mut body_sigs = vec![None; program.functions.len()];
        for f in &program.functions {
            body_sig(program, &mut body_sigs, f.id);
        }
        CompactPdg {
            indexer,
            per_checker,
            body_sigs: body_sigs
                .into_iter()
                .map(|s| s.expect("sig computed"))
                .collect(),
            iso: IsoVerdicts::new(),
            stats,
        }
    }

    /// Rebuilds the compacted view for an edited program, transplanting
    /// the previous view's isomorphic-verdict memo into the new one. The
    /// live sets, chain tables, and body signatures are all derived from
    /// the new program (they are cheap O(program) passes); the memo is
    /// the only state worth carrying across an edit. The transplant is
    /// sound because iso keys are *content-pinned*: every function a
    /// memoized path set involves contributes its recursive structural
    /// body signature to the key, so a class recorded against pre-edit
    /// content can never answer a post-edit query against changed code —
    /// the changed body produces a different key. Retained classes whose
    /// functions are untouched answer exactly as a cold run's engine
    /// would (definite verdicts are renaming-invariant), so reports stay
    /// byte-identical to a cold scan while repeat queries get strictly
    /// cheaper.
    pub fn rebuild(
        program: &Program,
        pdg: &Pdg,
        set: &CheckerSet,
        opts: &PropagateOptions,
        prev: CompactPdg,
    ) -> CompactPdg {
        let mut next = CompactPdg::build(program, pdg, set, opts);
        next.iso = prev.iso;
        next
    }

    /// What the pass removed (for `StageStats` attribution).
    pub fn stats(&self) -> CompactStats {
        self.stats
    }

    /// Whether `v` is live for checker `id` — i.e. lies on some
    /// source→sink chain of taken edges. Discovery refuses to step onto
    /// dead vertices.
    pub fn is_live(&self, id: CheckerId, v: Vertex) -> bool {
        self.per_checker[id.0].live.contains(self.indexer.index(v))
    }

    /// The collapsed chain entered at `site` through callee parameter
    /// `param`, if this corridor collapsed for checker `id`.
    pub fn chain(&self, id: CheckerId, site: CallSiteId, param: VarId) -> Option<&SummaryChain> {
        self.per_checker[id.0].chains.get(&(site, param))
    }

    /// The shared isomorphic-verdict memo.
    pub fn iso(&self) -> &IsoVerdicts {
        &self.iso
    }

    /// The canonical renaming-invariant content key of a path-set query:
    /// the same serialization as [`crate::cache::path_set_key`], except
    /// function identities become first-occurrence indices (pinned by
    /// their structural body signature), call-site identities become
    /// first-occurrence indices, and per-vertex transfer content is
    /// subsumed by the body signature folded at each function's first
    /// occurrence. Two path sets with equal keys are equal modulo a
    /// body-preserving renaming of functions and call sites — and no
    /// function or call-site *identity* (let alone name) ever reaches
    /// the slice, translation, or solver layers, so their feasibility
    /// verdicts coincide.
    pub fn iso_key(&self, paths: &[DependencePath]) -> Key128 {
        let mut h = Fnv::new();
        let mut func_canon: HashMap<FuncId, u64> = HashMap::new();
        let mut site_canon: HashMap<CallSiteId, u64> = HashMap::new();
        h.write(paths.len() as u64);
        for path in paths {
            h.write(0xD1CE_D1CE); // path separator (distinct from exact-key's)
            h.write(path.nodes.len() as u64);
            for v in &path.nodes {
                let next = func_canon.len() as u64;
                match func_canon.entry(v.func) {
                    std::collections::hash_map::Entry::Occupied(e) => h.write(*e.get()),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(next);
                        h.write(next);
                        let sig = self.body_sigs[v.func.index()];
                        h.write(sig.lo);
                        h.write(sig.hi);
                    }
                }
                h.write(v.var.0 as u64);
            }
            for link in &path.links {
                match link {
                    Link::Local => h.write(1),
                    Link::Enter(s) => {
                        h.write(2);
                        h.write(canon_site(&mut site_canon, *s));
                    }
                    Link::Exit(s) => {
                        h.write(3);
                        h.write(canon_site(&mut site_canon, *s));
                    }
                }
            }
        }
        h.finish()
    }
}

fn canon_site(canon: &mut HashMap<CallSiteId, u64>, s: CallSiteId) -> u64 {
    let next = canon.len() as u64;
    *canon.entry(s).or_insert(next)
}

/// The structural body signature of a function: a dual-FNV fold over its
/// whole definition array — kinds, operands, guards, parameter count,
/// return position — with every cross-function reference replaced by the
/// callee's own signature (the call graph is acyclic, enforced by IR
/// validation) and call-site identities omitted (definition order pins
/// them). External functions contribute only their extern-ness and
/// arity: their names never enter a formula, so equal-arity externs are
/// interchangeable for feasibility purposes.
fn body_sig(program: &Program, sigs: &mut Vec<Option<Key128>>, f: FuncId) -> Key128 {
    if let Some(s) = sigs[f.index()] {
        return s;
    }
    let func = program.func(f);
    let mut h = Fnv::new();
    h.write(func.is_extern as u64);
    h.write(func.params.len() as u64);
    match func.ret {
        None => h.write(30),
        Some(r) => {
            h.write(31);
            h.write(r.0 as u64);
        }
    }
    if !func.is_extern {
        h.write(func.defs.len() as u64);
        for def in &func.defs {
            match &def.kind {
                DefKind::Param { index } => {
                    h.write(10);
                    h.write(*index as u64);
                }
                DefKind::Const { value, is_null } => {
                    h.write(11);
                    h.write(*value as u64);
                    h.write(*is_null as u64);
                }
                DefKind::Copy { src } => {
                    h.write(12);
                    h.write(src.0 as u64);
                }
                DefKind::Binary { op, lhs, rhs } => {
                    h.write(13);
                    h.write(*op as u64);
                    h.write(lhs.0 as u64);
                    h.write(rhs.0 as u64);
                }
                DefKind::Ite {
                    cond,
                    then_v,
                    else_v,
                } => {
                    h.write(14);
                    h.write(cond.0 as u64);
                    h.write(then_v.0 as u64);
                    h.write(else_v.0 as u64);
                }
                DefKind::Call {
                    callee,
                    args,
                    site: _,
                } => {
                    h.write(15);
                    let cs = body_sig(program, sigs, *callee);
                    h.write(cs.lo);
                    h.write(cs.hi);
                    h.write(args.len() as u64);
                    for a in args {
                        h.write(a.0 as u64);
                    }
                }
                DefKind::Branch { cond } => {
                    h.write(16);
                    h.write(cond.0 as u64);
                }
                DefKind::Return { src } => {
                    h.write(17);
                    h.write(src.0 as u64);
                }
            }
            match def.guard {
                None => h.write(20),
                Some(g) => {
                    h.write(21);
                    h.write(g.0 as u64);
                }
            }
        }
    }
    let s = h.finish();
    sigs[f.index()] = Some(s);
    s
}

/// Builds one checker's live set and chain table, accumulating pruning
/// counters.
fn build_checker(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    indexer: &VertexIndexer,
    opts: &PropagateOptions,
    stats: &mut CompactStats,
) -> CheckerCompact {
    let n = indexer.len();
    // The checker-taken edge relation, as discovery walks it — except
    // that return edges ignore the CFL stack (every caller is taken), a
    // safe over-approximation for reachability.
    let mut fwd_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut trigger = vec![false; n];
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        for def in &func.defs {
            let at = Vertex::new(func.id, def.var);
            let ai = indexer.index(at);
            for t in pdg.flow_targets(program, at) {
                match t {
                    FlowTarget::Local { to, operand } => {
                        if checker.propagates_through(func, to, operand)
                            && checker.keeps_fact(func, to)
                        {
                            fwd_adj[ai].push(indexer.index(Vertex::new(func.id, to)) as u32);
                        }
                    }
                    FlowTarget::IntoCallee { callee, param, .. } => {
                        fwd_adj[ai].push(indexer.index(Vertex::new(callee, param)) as u32);
                    }
                    FlowTarget::BackToCaller { caller, dst, .. } => {
                        fwd_adj[ai].push(indexer.index(Vertex::new(caller, dst)) as u32);
                    }
                    FlowTarget::ThroughExtern { to, .. } => {
                        if checker.is_sink(program, func, to) {
                            trigger[ai] = true;
                        } else if checker.through_extern && !checker.is_sanitizer(program, func, to)
                        {
                            fwd_adj[ai].push(indexer.index(Vertex::new(func.id, to)) as u32);
                        }
                    }
                }
            }
        }
    }

    // Forward reachability from the checker's sources.
    let mut fwd = DenseBitSet::new(n);
    let mut work: Vec<u32> = Vec::new();
    for src in source_vertices(program, checker) {
        let i = indexer.index(src);
        if fwd.insert(i) {
            work.push(i as u32);
        }
    }
    while let Some(u) = work.pop() {
        for &v in &fwd_adj[u as usize] {
            if fwd.insert(v as usize) {
                work.push(v);
            }
        }
    }

    // Backward reachability to a sink trigger (over reversed edges).
    let mut rev_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, outs) in fwd_adj.iter().enumerate() {
        for &v in outs {
            rev_adj[v as usize].push(u as u32);
        }
    }
    let mut bwd = DenseBitSet::new(n);
    for (i, &t) in trigger.iter().enumerate() {
        if t && bwd.insert(i) {
            work.push(i as u32);
        }
    }
    while let Some(u) = work.pop() {
        for &v in &rev_adj[u as usize] {
            if bwd.insert(v as usize) {
                work.push(v);
            }
        }
    }

    let mut live = DenseBitSet::new(n);
    for i in 0..n {
        if fwd.contains(i) && bwd.contains(i) {
            live.insert(i);
        }
    }
    stats.vertices_pruned += (n - live.count()) as u64;
    for (u, outs) in fwd_adj.iter().enumerate() {
        for &v in outs {
            if !(live.contains(u) && live.contains(v as usize)) {
                stats.edges_pruned += 1;
            }
        }
    }

    // Summary-chain collapse: one candidate corridor per (site, entry
    // parameter) of every non-extern call site.
    let mut chains: HashMap<(CallSiteId, VarId), SummaryChain> = HashMap::new();
    for (sid, cs) in program.call_sites.iter().enumerate() {
        let site = CallSiteId(sid as u32);
        let callee = program.func(cs.callee);
        if callee.is_extern {
            continue;
        }
        for &param in &callee.params {
            if let Some(chain) = detect_chain(
                program, pdg, checker, &live, indexer, opts, site, cs.callee, param,
            ) {
                chains.insert((site, param), chain);
            }
        }
    }
    stats.chains_collapsed += chains.len() as u64;

    CheckerCompact { live, chains }
}

/// Walks the corridor entered at `site` through `param`, with the CFL
/// stack top statically known to be `site`. Succeeds only when every
/// vertex up to the matching exit is live, has exactly one taken step
/// target, records nothing (no sink trigger), and never enters a nested
/// call — precisely the conditions under which the vertex-by-vertex
/// traversal is deterministic and silent, so replaying the recorded
/// body is observationally identical.
#[allow(clippy::too_many_arguments)] // one internal call site; splitting a params struct would obscure it
fn detect_chain(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    live: &DenseBitSet,
    indexer: &VertexIndexer,
    opts: &PropagateOptions,
    site: CallSiteId,
    callee: FuncId,
    param: VarId,
) -> Option<SummaryChain> {
    let mut body: Vec<(Link, Vertex)> = Vec::new();
    let mut seen: std::collections::HashSet<Vertex> = std::collections::HashSet::new();
    let mut cur = Vertex::new(callee, param);
    let mut link = Link::Enter(site);
    loop {
        if !live.contains(indexer.index(cur)) || !seen.insert(cur) {
            return None; // dead or cyclic corridor: fall back to the plain walk
        }
        body.push((link, cur));
        if body.len() >= opts.max_path_len {
            return None; // could never complete within a path anyway
        }
        let func = program.func(cur.func);
        let mut taken = 0usize;
        let mut next: Option<(Link, Vertex)> = None;
        let mut exits = false;
        for t in pdg.flow_targets(program, cur) {
            match t {
                FlowTarget::Local { to, operand } => {
                    if checker.propagates_through(func, to, operand) && checker.keeps_fact(func, to)
                    {
                        taken += 1;
                        next = Some((Link::Local, Vertex::new(cur.func, to)));
                    }
                }
                // A nested call would span a deeper frame; don't collapse.
                FlowTarget::IntoCallee { .. } => return None,
                FlowTarget::BackToCaller {
                    site: s,
                    caller,
                    dst,
                } => {
                    // With `site` on top of the stack only the matching
                    // parenthesis is taken; mismatches are blocked by the
                    // CFL discipline exactly as in discovery.
                    if s == site {
                        taken += 1;
                        next = Some((Link::Exit(site), Vertex::new(caller, dst)));
                        exits = true;
                    }
                }
                FlowTarget::ThroughExtern { to, .. } => {
                    if checker.is_sink(program, func, to) {
                        return None; // the corridor would record mid-chain
                    }
                    if checker.through_extern && !checker.is_sanitizer(program, func, to) {
                        taken += 1;
                        next = Some((Link::Local, Vertex::new(cur.func, to)));
                    }
                }
            }
        }
        if taken != 1 {
            return None;
        }
        let (l, v) = next.expect("taken == 1 implies a target");
        if exits {
            if !live.contains(indexer.index(v)) {
                return None;
            }
            body.push((l, v));
            return Some(SummaryChain { site, body });
        }
        link = l;
        cur = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use fusion_ir::{compile, CompileOptions};

    fn build(src: &str, set: &CheckerSet) -> (Program, Pdg, CompactPdg) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let c = CompactPdg::build(&p, &g, set, &PropagateOptions::default());
        (p, g, c)
    }

    #[test]
    fn dead_flows_are_pruned_live_flows_are_kept() {
        // `q` reaches deref in f; the whole of g is dead for null-deref
        // (no source), as is f's unrelated arithmetic.
        let src = "extern fn deref(p);\n\
             fn f(x) { let q = null; let w = x + 1; deref(q); return w; }\n\
             fn g(y) { let z = y + 2; return z; }";
        let set = CheckerSet::single(Checker::null_deref());
        let (p, _, c) = build(src, &set);
        let f = p.func_by_name("f").unwrap();
        let g = p.func_by_name("g").unwrap();
        let q = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Const { is_null: true, .. }))
            .unwrap();
        assert!(c.is_live(CheckerId(0), Vertex::new(f.id, q.var)));
        // g's vertices are all dead for the null checker.
        for d in &g.defs {
            assert!(!c.is_live(CheckerId(0), Vertex::new(g.id, d.var)));
        }
        assert!(c.stats().vertices_pruned > 0);
        assert!(c.stats().edges_pruned > 0);
    }

    #[test]
    fn identity_corridor_collapses_to_a_chain() {
        let src = "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f() { let q = null; let r = id(q); deref(r); return 0; }";
        let set = CheckerSet::single(Checker::null_deref());
        let (p, _, c) = build(src, &set);
        assert_eq!(c.stats().chains_collapsed, 1);
        let id_f = p.func_by_name("id").unwrap();
        let site = CallSiteId(0);
        let chain = c
            .chain(CheckerId(0), site, id_f.params[0])
            .expect("identity corridor collapses");
        // Enter(param) → return def → Exit(receiver): three steps.
        assert_eq!(chain.len(), 3);
        assert!(matches!(chain.body[0].0, Link::Enter(s) if s == site));
        assert!(matches!(chain.body[2].0, Link::Exit(s) if s == site));
    }

    #[test]
    fn branching_callee_does_not_collapse() {
        // Inside `pick` the fact fans out to two uses, so the corridor is
        // not single-exit and must not collapse.
        let src = "extern fn deref(p);\n\
             fn pick(x) { let a = x + 1; let b = x + 2; let y = a + b; return y; }\n\
             fn f() { let q = null; let r = pick(q); deref(r); return 0; }";
        let set = CheckerSet::single(Checker::null_deref());
        let (p, _, c) = build(src, &set);
        let pick = p.func_by_name("pick").unwrap();
        assert!(c
            .chain(CheckerId(0), CallSiteId(0), pick.params[0])
            .is_none());
    }

    #[test]
    fn sink_inside_callee_blocks_collapse() {
        // The corridor records mid-chain (deref inside `use_it`), so it
        // must stay a vertex-by-vertex walk.
        let src = "extern fn deref(p);\n\
             fn use_it(x) { deref(x); return x; }\n\
             fn f() { let q = null; let r = use_it(q); deref(r); return 0; }";
        let set = CheckerSet::single(Checker::null_deref());
        let (p, _, c) = build(src, &set);
        let u = p.func_by_name("use_it").unwrap();
        assert!(c.chain(CheckerId(0), CallSiteId(0), u.params[0]).is_none());
    }

    #[test]
    fn iso_key_is_renaming_invariant_and_content_sensitive() {
        // f and g are byte-identical bodies at different FuncIds/sites;
        // h differs in content.
        let src = "extern fn deref(p);\n\
             fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn g(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn h(x) { let q = null; let r = 1; if (x > 5) { r = q; } deref(r); return 0; }";
        let set = CheckerSet::single(Checker::null_deref());
        let (p, g, c) = build(src, &set);
        let cands = crate::propagate::discover(
            &p,
            &g,
            &Checker::null_deref(),
            &PropagateOptions::default(),
        );
        assert_eq!(cands.len(), 3);
        let key = |i: usize| c.iso_key(std::slice::from_ref(&cands[i].paths[0]));
        let exact =
            |i: usize| crate::cache::path_set_key(&p, std::slice::from_ref(&cands[i].paths[0]));
        assert_ne!(exact(0), exact(1), "exact keys separate f and g");
        assert_eq!(key(0), key(1), "iso keys unify isomorphic paths");
        assert_ne!(key(0), key(2), "different guard constant separates h");
    }

    #[test]
    fn iso_verdicts_share_definite_and_drop_unknown() {
        let iso = IsoVerdicts::new();
        let k = Key128::from_parts(1, 2);
        assert!(iso.is_empty());
        iso.insert(k, Feasibility::Unknown);
        assert_eq!(iso.get(k), None, "Unknown is never memoized");
        iso.insert(k, Feasibility::Feasible);
        assert_eq!(iso.get(k), Some(Feasibility::Feasible));
        assert_eq!(iso.len(), 1);
    }
}

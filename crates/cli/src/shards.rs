//! Multi-process partitioned scans: the `--shard-workers` coordinator
//! and the `--shard-worker` loop it spawns.
//!
//! The coordinator writes the program+facts snapshot to disk once, then
//! hands each shard to a worker process as one line-delimited JSON job
//! (`{"snapshot", "shard", "shards", "out"}`) on the worker's stdin.
//! A worker never parses source and never materializes the whole
//! program: it reads the call-graph summary section, recomputes the
//! same deterministic [`ShardPlan`], lazily loads only its closure's
//! function and fact sections, and writes its owned outcomes — remapped
//! to global identities — to `out` as a standalone snapshot container.
//! The coordinator merges the containers and replays them over the full
//! program, so the report is byte-identical to the unsharded (and the
//! in-process sharded) pipeline. Only dependence structure and verdicts
//! cross the process boundary — never a path condition (§3.2.2).

use crate::json::{self, escape};
use crate::{effective_checkers, make_engine, CheckerChoice, CliError, EngineChoice, Options};
use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{AnalysisOptions, FeasibilityEngine, ItemOutcomes};
use fusion::shard::{
    merge_outcomes, outcomes_container, replay_merged, run_shard, scan_snapshot, ShardedRun,
};
use fusion::snapshot::{self, open_file, CallGraphInfo};
use fusion::ShardPlan;
use fusion_ir::ssa::Program;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent partitioned scans inside one process (the
/// test harness runs many), so their default snapshot dirs never
/// collide.
static SCAN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs the `--shard-worker` loop: one JSON job per stdin line, one
/// JSON response line per job, until EOF. Returns the process exit code
/// (0 — job failures are reported in-band so the coordinator can
/// surface them).
pub fn shard_worker_loop(opts: &Options, input: impl BufRead, out: &mut dyn Write) -> i32 {
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match run_worker_job(opts, line.trim()) {
            Ok(resp) => resp,
            Err(e) => format!("{{\"ok\": false, \"error\": \"{}\"}}", escape(&e.0)),
        };
        let _ = writeln!(out, "{resp}");
        let _ = out.flush();
    }
    0
}

fn run_worker_job(opts: &Options, line: &str) -> Result<String, CliError> {
    let req = json::Value::parse(line).map_err(|e| CliError(format!("malformed job: {e}")))?;
    let snapshot_path = req
        .get("snapshot")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CliError("job needs a string `snapshot` member".into()))?;
    let shard =
        req.get("shard")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| CliError("job needs a numeric `shard` member".into()))? as usize;
    let k = req
        .get("shards")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| CliError("job needs a numeric `shards` member".into()))?
        as usize;
    let out_path = req
        .get("out")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CliError("job needs a string `out` member".into()))?;
    let snap = open_file(Path::new(snapshot_path))
        .map_err(|e| CliError(format!("open snapshot `{snapshot_path}`: {e}")))?;
    // The worker recomputes the plan from the snapshot's call-graph
    // summary alone; it is a pure function of (call graph, K), so the
    // coordinator and every worker agree on ownership without any
    // plan ever crossing the wire.
    let info =
        snapshot::read_callgraph(&snap).map_err(|e| CliError(format!("read call graph: {e}")))?;
    let plan = ShardPlan::compute(&info, k);
    let (set, _) = effective_checkers(opts);
    let mut analysis_opts = AnalysisOptions::new();
    analysis_opts.absint = opts.absint;
    analysis_opts.compact = opts.compact;
    let (engine_choice, timeout, incremental, egraph) =
        (opts.engine, opts.timeout, opts.incremental, opts.egraph);
    let factory = move || make_engine(engine_choice, timeout, incremental, egraph);
    let shared_cache = VerdictCache::new();
    let cache = opts.use_cache.then_some(&shared_cache);
    let output = run_shard(
        &snap,
        &info,
        &plan,
        shard,
        &set,
        &factory,
        opts.threads,
        &analysis_opts,
        cache,
    )
    .map_err(|e| CliError(format!("shard {shard} failed: {e}")))?;
    let container = outcomes_container(&output.outcomes);
    let outcome_bytes = container.len() as u64;
    std::fs::write(out_path, container)
        .map_err(|e| CliError(format!("write `{out_path}`: {e}")))?;
    Ok(format!(
        "{{\"ok\": true, \"shard\": {shard}, \"exported\": {}, \"imported\": {}, \
         \"peak_memory\": {}, \"queries\": {}, \"snapshot_bytes_read\": {}, \
         \"outcome_bytes_written\": {outcome_bytes}}}",
        output.exported,
        output.imported,
        output.peak_memory,
        output.queries,
        snap.bytes_read()
    ))
}

/// Locates the `fusion-scan` binary to spawn as a shard worker:
/// `FUSION_SCAN_BIN` wins, then the current executable when it *is*
/// `fusion-scan`, then a `fusion-scan` next to (or one level above) the
/// current executable — which finds the built binary from inside a test
/// harness under `target/*/deps/`.
pub fn worker_binary() -> Result<PathBuf, CliError> {
    if let Some(p) = std::env::var_os("FUSION_SCAN_BIN") {
        return Ok(PathBuf::from(p));
    }
    if let Ok(exe) = std::env::current_exe() {
        if exe
            .file_stem()
            .is_some_and(|s| s.to_string_lossy() == "fusion-scan")
        {
            return Ok(exe);
        }
        for dir in [exe.parent(), exe.parent().and_then(Path::parent)]
            .into_iter()
            .flatten()
        {
            let candidate = dir.join("fusion-scan");
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(CliError(
        "cannot locate the fusion-scan binary for shard workers; set FUSION_SCAN_BIN".into(),
    ))
}

fn engine_name(e: EngineChoice) -> &'static str {
    match e {
        EngineChoice::Fusion => "fusion",
        EngineChoice::Unopt => "unopt",
        EngineChoice::Pinpoint => "pinpoint",
        EngineChoice::Ar => "ar",
    }
}

fn checker_name(c: CheckerChoice) -> &'static str {
    match c {
        CheckerChoice::Null => "null",
        CheckerChoice::Cwe23 => "cwe23",
        CheckerChoice::Cwe402 => "cwe402",
        CheckerChoice::All => "all",
    }
}

/// Forwards every analysis-relevant flag to a worker so its shard runs
/// under exactly the coordinator's configuration.
fn push_analysis_flags(cmd: &mut Command, opts: &Options) {
    cmd.arg("--engine").arg(engine_name(opts.engine));
    cmd.arg("--checker").arg(checker_name(opts.checker));
    cmd.arg("--solver-timeout-ms")
        .arg(opts.timeout.as_millis().to_string());
    cmd.arg("--threads").arg(opts.threads.to_string());
    cmd.arg(if opts.use_cache {
        "--cache"
    } else {
        "--no-cache"
    });
    cmd.arg(if opts.stream {
        "--stream"
    } else {
        "--no-stream"
    });
    if !opts.incremental {
        cmd.arg("--no-incremental");
    }
    cmd.arg(if opts.absint {
        "--absint"
    } else {
        "--no-absint"
    });
    cmd.arg(if opts.compact {
        "--compact"
    } else {
        "--no-compact"
    });
    cmd.arg(if opts.egraph {
        "--egraph"
    } else {
        "--no-egraph"
    });
    for s in &opts.extra_sources {
        cmd.arg("--source").arg(s);
    }
    for s in &opts.extra_sinks {
        cmd.arg("--sink").arg(s);
    }
    for s in &opts.extra_sanitizers {
        cmd.arg("--sanitizer").arg(s);
    }
}

/// Runs a partitioned scan with `--shard-workers` separate worker
/// processes: snapshot the program to `--snapshot-dir` (or a scan-scoped
/// temp dir), distribute the non-empty shards round-robin over the
/// workers, merge the outcome containers they write, and replay the
/// merged set over the full program. The replayed report is
/// byte-identical to the unsharded scan.
#[allow(clippy::too_many_arguments)]
pub fn analyze_sharded_multiprocess(
    program: &Program,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    opts: &Options,
    analysis_opts: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> Result<ShardedRun, CliError> {
    let k = opts.shards;
    let (dir, ephemeral) = match &opts.snapshot_dir {
        Some(d) => (PathBuf::from(d), false),
        None => {
            let seq = SCAN_SEQ.fetch_add(1, Ordering::Relaxed);
            let d =
                std::env::temp_dir().join(format!("fusion-shards-{}-{seq}", std::process::id()));
            (d, true)
        }
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError(format!("create `{}`: {e}", dir.display())))?;
    let result = coordinate(program, set, factory, opts, analysis_opts, cache, k, &dir);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn coordinate(
    program: &Program,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    opts: &Options,
    analysis_opts: &AnalysisOptions,
    cache: Option<&VerdictCache>,
    k: usize,
    dir: &Path,
) -> Result<ShardedRun, CliError> {
    let bytes = scan_snapshot(program, analysis_opts);
    let mut bytes_written = bytes.len() as u64;
    let snap_path = dir.join("scan.fsnp");
    std::fs::write(&snap_path, &bytes)
        .map_err(|e| CliError(format!("write `{}`: {e}", snap_path.display())))?;
    drop(bytes);
    let info = CallGraphInfo::of_program(program);
    let plan = ShardPlan::compute(&info, k);
    let non_empty: Vec<usize> = (0..plan.k())
        .filter(|&s| !plan.owned(s).is_empty())
        .collect();
    let worker_bin = worker_binary()?;
    let n_workers = opts.shard_workers.min(non_empty.len()).max(1);

    // Spawn every worker with its whole job list up front; each worker
    // streams one response line per job, so closing its stdin after the
    // last job lets it drain and exit.
    let mut children = Vec::new();
    for w in 0..n_workers {
        let jobs: Vec<usize> = non_empty
            .iter()
            .copied()
            .skip(w)
            .step_by(n_workers)
            .collect();
        if jobs.is_empty() {
            continue;
        }
        let mut cmd = Command::new(&worker_bin);
        cmd.arg("--shard-worker");
        push_analysis_flags(&mut cmd, opts);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd
            .spawn()
            .map_err(|e| CliError(format!("spawn `{}`: {e}", worker_bin.display())))?;
        let mut stdin = child.stdin.take().expect("stdin piped");
        for &s in &jobs {
            let out_path = dir.join(format!("shard-{s}.fsnp"));
            writeln!(
                stdin,
                "{{\"snapshot\": \"{}\", \"shard\": {s}, \"shards\": {k}, \"out\": \"{}\"}}",
                escape(&snap_path.display().to_string()),
                escape(&out_path.display().to_string())
            )
            .map_err(|e| CliError(format!("send job to shard worker: {e}")))?;
        }
        drop(stdin);
        children.push((child, jobs));
    }

    let mut exported = 0u64;
    let mut imported = 0u64;
    let mut bytes_read = 0u64;
    let mut peaks: Vec<(usize, u64)> = Vec::new();
    for (child, jobs) in children {
        let output = child
            .wait_with_output()
            .map_err(|e| CliError(format!("wait for shard worker: {e}")))?;
        let text = String::from_utf8_lossy(&output.stdout);
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        for &s in &jobs {
            let line = lines.next().ok_or_else(|| {
                CliError(format!("shard worker exited without answering shard {s}"))
            })?;
            let resp = json::Value::parse(line)
                .map_err(|e| CliError(format!("malformed worker response: {e}")))?;
            if resp.get("ok") != Some(&json::Value::Bool(true)) {
                let msg = resp
                    .get("error")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unknown error");
                return Err(CliError(format!("shard {s} failed: {msg}")));
            }
            let num = |key: &str| resp.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            exported += num("exported");
            imported += num("imported");
            bytes_read += num("snapshot_bytes_read");
            bytes_written += num("outcome_bytes_written");
            peaks.push((s, num("peak_memory")));
        }
    }
    peaks.sort_unstable();

    // Merge the per-shard containers and replay over the full program.
    let mut parts: Vec<ItemOutcomes> = Vec::new();
    for &s in &non_empty {
        let out_path = dir.join(format!("shard-{s}.fsnp"));
        let container =
            open_file(&out_path).map_err(|e| CliError(format!("open shard {s} outcomes: {e}")))?;
        parts.push(
            snapshot::read_outcomes(&container)
                .map_err(|e| CliError(format!("read shard {s} outcomes: {e}")))?,
        );
        bytes_read += container.bytes_read();
    }
    let merged = merge_outcomes(parts);
    let mut run = replay_merged(
        program,
        set,
        factory,
        opts.threads,
        analysis_opts,
        cache,
        &merged,
    );
    run.stages.shards = k as u64;
    run.stages.summaries_exported = exported;
    run.stages.summaries_imported = imported;
    run.stages.snapshot_bytes_written = bytes_written;
    run.stages.snapshot_bytes_read = bytes_read;
    Ok(ShardedRun {
        run,
        shard_peaks: peaks.into_iter().map(|(_, p)| p).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan_source, Options};
    use std::io::Cursor;

    const SRC: &str = "extern fn deref(p);\n\
        fn leaf(x) { let b = x & 7; return b; }\n\
        fn use_a(p) { let v = leaf(p); let q = null; let r = 1; if (v > 2) { r = q; } deref(r); return 0; }\n\
        fn iso_b(z) { let q = null; let r = 1; if (z < 1) { r = q; } deref(r); return 0; }";

    /// Drives the worker loop in-process (no child process needed): the
    /// job protocol itself is what's under test here.
    #[test]
    fn worker_loop_answers_jobs_and_reports_errors() {
        let dir = std::env::temp_dir().join(format!(
            "fusion-worker-loop-{}-{}",
            std::process::id(),
            SCAN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let program = fusion_ir::compile(SRC, fusion_ir::CompileOptions::default()).unwrap();
        let opts = Options::default();
        let mut analysis_opts = AnalysisOptions::new();
        analysis_opts.absint = opts.absint;
        analysis_opts.compact = opts.compact;
        let snap_path = dir.join("scan.fsnp");
        std::fs::write(&snap_path, scan_snapshot(&program, &analysis_opts)).unwrap();
        let out_path = dir.join("shard-0.fsnp");
        let jobs = format!(
            "{{\"snapshot\": \"{}\", \"shard\": 0, \"shards\": 2, \"out\": \"{}\"}}\n\
             not json\n",
            escape(&snap_path.display().to_string()),
            escape(&out_path.display().to_string())
        );
        let mut out = Vec::new();
        let code = shard_worker_loop(&opts, Cursor::new(jobs), &mut out);
        assert_eq!(code, 0);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let ok = json::Value::parse(lines[0]).unwrap();
        assert_eq!(ok.get("ok"), Some(&json::Value::Bool(true)));
        assert!(ok.get("exported").unwrap().as_f64().unwrap() >= 1.0);
        assert!(out_path.is_file(), "worker wrote its outcome container");
        let err = json::Value::parse(lines[1]).unwrap();
        assert_eq!(err.get("ok"), Some(&json::Value::Bool(false)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiprocess_scan_matches_unsharded_when_binary_available() {
        if worker_binary().is_err() {
            eprintln!("skipping: no fusion-scan binary (set FUSION_SCAN_BIN)");
            return;
        }
        let base = scan_source(SRC, &Options::default()).unwrap();
        let sharded = scan_source(
            SRC,
            &Options {
                shards: 2,
                shard_workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base.findings.len(), sharded.findings.len());
        for (a, b) in base.findings.iter().zip(&sharded.findings) {
            assert_eq!(a.checker, b.checker);
            assert_eq!(a.source_function, b.source_function);
            assert_eq!(a.sink_function, b.sink_function);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.path_length, b.path_length);
        }
        assert_eq!(sharded.shards, 2);
        assert!(sharded.snapshot_bytes_written > 0);
        assert!(sharded.snapshot_bytes_read > 0);
    }
}

//! SMT-LIB 2 export.
//!
//! Emits any boolean term as a standard `QF_BV` script so conditions built
//! by this crate can be cross-checked with an external solver (Z3, cvc5,
//! Bitwuzla, ...). Useful both for downstream users who want a second
//! opinion and for debugging the reproduction against the solver the paper
//! used.

use crate::term::{BvOp, BvPred, Sort, TermId, TermKind, TermPool};
use std::collections::HashMap;
use std::fmt::Write as _;

fn sort_smt(sort: Sort) -> String {
    match sort {
        Sort::Bool => "Bool".to_owned(),
        Sort::Bv(w) => format!("(_ BitVec {w})"),
    }
}

fn op_smt(op: BvOp) -> &'static str {
    match op {
        BvOp::Add => "bvadd",
        BvOp::Sub => "bvsub",
        BvOp::Mul => "bvmul",
        BvOp::Udiv => "bvudiv",
        BvOp::Urem => "bvurem",
        BvOp::And => "bvand",
        BvOp::Or => "bvor",
        BvOp::Xor => "bvxor",
        BvOp::Shl => "bvshl",
        BvOp::Lshr => "bvlshr",
        BvOp::Ashr => "bvashr",
    }
}

fn pred_smt(p: BvPred) -> &'static str {
    match p {
        BvPred::Ult => "bvult",
        BvPred::Ule => "bvule",
        BvPred::Slt => "bvslt",
        BvPred::Sle => "bvsle",
    }
}

/// SMT-LIB identifiers: quote anything beyond `[A-Za-z0-9_]` with `|...|`.
fn ident(name: &str) -> String {
    if !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
        && !name.starts_with(|c: char| c.is_ascii_digit())
    {
        name.to_owned()
    } else {
        format!("|{name}|")
    }
}

/// Emits `formula` as a complete SMT-LIB 2 script: `set-logic QF_BV`,
/// sorted declarations for every free variable, named `let`-bindings for
/// shared subterms (preserving the DAG's structural sharing), one
/// `assert`, and `check-sat`.
///
/// # Panics
///
/// Panics if `formula` is not boolean-sorted.
pub fn to_smtlib2(pool: &TermPool, formula: TermId) -> String {
    assert_eq!(
        pool.sort(formula),
        Sort::Bool,
        "to_smtlib2: formula must be Bool"
    );
    let mut out = String::from("(set-logic QF_BV)\n");
    let mut vars = pool.free_vars(formula);
    vars.sort_unstable();
    for v in vars {
        let _ = writeln!(
            out,
            "(declare-const {} {})",
            ident(pool.var_name(v)),
            sort_smt(pool.var_sort(v))
        );
    }
    // Count references to decide which nodes earn a let binding.
    let mut refs: HashMap<TermId, u32> = HashMap::new();
    let mut stack = vec![formula];
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        *refs.entry(t).or_insert(0) += 1;
        if seen.insert(t) {
            stack.extend(pool.children(t));
        }
    }
    // Expression rendering is iterative (explicit token stack, no
    // recursion): deep unshared chains — exactly what engine-built
    // conditions look like before simplification — must not overflow the
    // stack, and the text is written straight into one buffer so the
    // script stays linear in DAG size.
    enum Tok {
        Term(TermId),
        Text(&'static str),
    }
    fn expr(pool: &TermPool, root: TermId, bound: &HashMap<TermId, String>) -> String {
        let mut out = String::new();
        let mut stack = vec![Tok::Term(root)];
        while let Some(tok) = stack.pop() {
            let t = match tok {
                Tok::Text(s) => {
                    out.push_str(s);
                    continue;
                }
                Tok::Term(t) => t,
            };
            if let Some(name) = bound.get(&t) {
                out.push_str(name);
                continue;
            }
            // Non-leaf nodes push their pieces in reverse so children pop
            // in left-to-right order.
            match pool.kind(t) {
                TermKind::BoolConst(b) => {
                    let _ = write!(out, "{b}");
                }
                TermKind::BvConst { width, value } => {
                    let _ = write!(out, "(_ bv{value} {width})");
                }
                TermKind::Var(v) => out.push_str(&ident(pool.var_name(*v))),
                TermKind::Not(x) => {
                    out.push_str("(not ");
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Term(*x));
                }
                TermKind::And(xs) | TermKind::Or(xs) => {
                    let opener = if matches!(pool.kind(t), TermKind::And(_)) {
                        "(and "
                    } else {
                        "(or "
                    };
                    out.push_str(opener);
                    stack.push(Tok::Text(")"));
                    for (i, &x) in xs.iter().enumerate().rev() {
                        stack.push(Tok::Term(x));
                        if i > 0 {
                            stack.push(Tok::Text(" "));
                        }
                    }
                }
                TermKind::Eq(a, b) => {
                    out.push_str("(= ");
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Term(*b));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Term(*a));
                }
                TermKind::Ite {
                    cond,
                    then_t,
                    else_t,
                } => {
                    out.push_str("(ite ");
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Term(*else_t));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Term(*then_t));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Term(*cond));
                }
                TermKind::Bv(op, a, b) => {
                    let _ = write!(out, "({} ", op_smt(*op));
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Term(*b));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Term(*a));
                }
                TermKind::Pred(p, a, b) => {
                    let _ = write!(out, "({} ", pred_smt(*p));
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Term(*b));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Term(*a));
                }
            }
        }
        out
    }
    // Bind shared non-leaf nodes bottom-up (iterative post-order over the
    // DAG — again recursion-free) so a cloned-condition script stays
    // linear in DAG size.
    let mut order: Vec<TermId> = Vec::new();
    let mut seen2 = std::collections::HashSet::new();
    let mut walk: Vec<(TermId, bool)> = vec![(formula, false)];
    while let Some((t, expanded)) = walk.pop() {
        if expanded {
            order.push(t);
            continue;
        }
        if !seen2.insert(t) {
            continue;
        }
        walk.push((t, true));
        let mut kids = pool.children(t);
        kids.reverse();
        for c in kids {
            if !seen2.contains(&c) {
                walk.push((c, false));
            }
        }
    }
    let mut bound: HashMap<TermId, String> = HashMap::new();
    let mut lets: Vec<(String, String)> = Vec::new();
    for &t in &order {
        let shared = refs.get(&t).copied().unwrap_or(0) > 1;
        let leafy = matches!(
            pool.kind(t),
            TermKind::BoolConst(_) | TermKind::BvConst { .. } | TermKind::Var(_)
        );
        if shared && !leafy && t != formula {
            let name = format!("?n{}", t.0);
            let body = expr(pool, t, &bound);
            lets.push((name.clone(), body));
            bound.insert(t, name);
        }
    }
    // Nest the bindings without re-copying the body per level (a heavily
    // shared DAG can earn thousands of lets): emit every `(let (...)` in
    // definition order — the deepest binding is outermost, exactly the
    // nesting right-fold wrapping would produce — then the root, then all
    // the closing parens at once.
    let root = expr(pool, formula, &bound);
    out.push_str("(assert ");
    for (name, def) in &lets {
        let _ = write!(out, "(let (({name} {def})) ");
    }
    out.push_str(&root);
    for _ in &lets {
        out.push(')');
    }
    out.push_str(")\n");
    out.push_str("(check-sat)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_declarations_and_assert() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(8));
        let b = p.var("b", Sort::Bool);
        let c = p.bv_const(7, 32);
        let e1 = p.eq(x, c);
        let z = p.bv_const(3, 8);
        let e2 = p.pred(BvPred::Ult, y, z);
        let f = p.and(&[e1, e2, b]);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("(set-logic QF_BV)"));
        assert!(s.contains("(declare-const x (_ BitVec 32))"));
        assert!(s.contains("(declare-const y (_ BitVec 8))"));
        assert!(s.contains("(declare-const b Bool)"));
        assert!(s.contains("(_ bv7 32)"));
        assert!(s.contains("(bvult y (_ bv3 8))"));
        assert!(s.contains("(check-sat)"));
    }

    #[test]
    fn shared_subterms_become_lets() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let one = p.bv_const(1, 16);
        let inc = p.bv(BvOp::Add, x, one); // shared
        let a = p.bv(BvOp::Mul, inc, inc);
        let two = p.bv_const(2, 16);
        let f = p.eq(a, two);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("(let ((?n"), "{s}");
    }

    #[test]
    fn deeply_shared_dag_stays_linear() {
        // A doubling DAG: t_{k+1} = t_k + t_k, 60 levels deep. Printed as
        // a tree this would be ~2^60 characters; with let bindings the
        // script must stay linear in the DAG's 60-odd nodes.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(64));
        let mut t = x;
        for _ in 0..60 {
            t = p.bv(BvOp::Add, t, t);
        }
        let zero = p.bv_const(0, 64);
        let f = p.eq(t, zero);
        let s = to_smtlib2(&p, f);
        assert!(s.len() < 10_000, "script exploded: {} bytes", s.len());
        assert!(s.contains("(let ((?n"), "{s}");
        assert!(s.ends_with("(check-sat)\n"));
        // Every binding is defined before use: each ?nN reference appears
        // after its `(let ((?nN` definition.
        for (i, _) in s.match_indices("?n") {
            let name_end = i + 2 + s[i + 2..].find(|c: char| !c.is_ascii_digit()).unwrap();
            let name = &s[i..name_end];
            let def = s.find(&format!("(let (({name} ")).expect("binding exists");
            assert!(def <= i, "{name} used before its definition");
        }
    }

    #[test]
    fn deep_unshared_chain_does_not_overflow() {
        // 50k-node left-leaning chain with no sharing: nothing earns a
        // let, so the printer walks the whole spine — it must do so
        // iteratively (the old recursive printer blew the stack here).
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let mut t = x;
        for i in 0..50_000u64 {
            let k = p.bv_const(i % 7 + 1, 32);
            t = p.bv(BvOp::Xor, t, k);
        }
        let zero = p.bv_const(0, 32);
        let f = p.eq(t, zero);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("(assert (= "), "{}", &s[..200.min(s.len())]);
        assert_eq!(s.matches("bvxor").count(), 50_000);
        assert!(s.ends_with("(check-sat)\n"));
    }

    #[test]
    fn odd_names_are_quoted() {
        let mut p = TermPool::new();
        let v = p.var("f0@3:v7", Sort::Bv(32));
        let c = p.bv_const(0, 32);
        let f = p.eq(v, c);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("|f0@3:v7|"), "{s}");
    }

    #[test]
    fn operators_cover_the_theory() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let mut parts = Vec::new();
        for op in [
            BvOp::Add,
            BvOp::Sub,
            BvOp::Mul,
            BvOp::Udiv,
            BvOp::Urem,
            BvOp::And,
            BvOp::Or,
            BvOp::Xor,
            BvOp::Shl,
            BvOp::Lshr,
            BvOp::Ashr,
        ] {
            let t = p.bv(op, x, y);
            parts.push(p.ne(t, x));
        }
        let f = p.and(&parts);
        let s = to_smtlib2(&p, f);
        for name in [
            "bvadd", "bvsub", "bvmul", "bvudiv", "bvurem", "bvand", "bvor", "bvxor", "bvshl",
            "bvlshr", "bvashr",
        ] {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}

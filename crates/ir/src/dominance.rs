//! Generic dominator / post-dominator / control-dependence computation.
//!
//! The paper (§3.1) builds control dependence edges "in almost linear time"
//! with the classic algorithms of Cytron et al. and Ferrante–Ottenstein–
//! Warren. This module provides those algorithms over a plain directed
//! graph: the iterative dominator algorithm of Cooper, Harvey and Kennedy,
//! post-dominators as dominators of the reverse graph, and control
//! dependence via post-dominance frontiers.

/// A directed graph over nodes `0..n`.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds the edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < self.len() && to < self.len(),
            "edge endpoint out of range"
        );
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Successors of `n`.
    pub fn succs(&self, n: usize) -> &[usize] {
        &self.succs[n]
    }

    /// Predecessors of `n`.
    pub fn preds(&self, n: usize) -> &[usize] {
        &self.preds[n]
    }

    /// The same graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }

    /// Reverse post-order from `entry`, visiting only reachable nodes.
    pub fn reverse_post_order(&self, entry: usize) -> Vec<usize> {
        let mut visited = vec![false; self.len()];
        let mut post = Vec::with_capacity(self.len());
        // Iterative DFS with an explicit stack of (node, next-child-index).
        let mut stack = vec![(entry, 0usize)];
        visited[entry] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n].len() {
                let child = self.succs[n][*i];
                *i += 1;
                if !visited[child] {
                    visited[child] = true;
                    stack.push((child, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

/// The immediate-dominator tree of a graph, rooted at its entry.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[n]` is the immediate dominator of `n`; `idom[entry] == entry`;
    /// `usize::MAX` marks unreachable nodes.
    idom: Vec<usize>,
    entry: usize,
}

/// Sentinel for unreachable nodes in [`DomTree`].
pub const UNREACHABLE: usize = usize::MAX;

impl DomTree {
    /// Computes dominators with the iterative algorithm of Cooper, Harvey
    /// and Kennedy ("A Simple, Fast Dominance Algorithm").
    pub fn compute(g: &DiGraph, entry: usize) -> DomTree {
        let rpo = g.reverse_post_order(entry);
        let mut order = vec![UNREACHABLE; g.len()];
        for (i, &n) in rpo.iter().enumerate() {
            order[n] = i;
        }
        let mut idom = vec![UNREACHABLE; g.len()];
        idom[entry] = entry;
        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                let mut new_idom = UNREACHABLE;
                for &p in g.preds(n) {
                    if idom[p] == UNREACHABLE {
                        continue; // not yet processed or unreachable
                    }
                    new_idom = if new_idom == UNREACHABLE {
                        p
                    } else {
                        intersect(&idom, &order, p, new_idom)
                    };
                }
                if new_idom != UNREACHABLE && idom[n] != new_idom {
                    idom[n] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, entry }
    }

    /// The immediate dominator of `n`, or `None` for the entry and
    /// unreachable nodes.
    pub fn idom(&self, n: usize) -> Option<usize> {
        if n == self.entry || self.idom[n] == UNREACHABLE {
            None
        } else {
            Some(self.idom[n])
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[b] == UNREACHABLE {
            return false;
        }
        let mut n = b;
        loop {
            if n == a {
                return true;
            }
            if n == self.entry {
                return false;
            }
            n = self.idom[n];
        }
    }

    /// Whether `n` is reachable from the entry.
    pub fn is_reachable(&self, n: usize) -> bool {
        self.idom[n] != UNREACHABLE
    }
}

fn intersect(idom: &[usize], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a];
        }
        while order[b] > order[a] {
            b = idom[b];
        }
    }
    a
}

/// Computes the control-dependence relation of a CFG with a unique `exit`,
/// per Ferrante–Ottenstein–Warren: node `y` is control dependent on node
/// `x` iff `x` has a successor from which `y` is (post-)reachable such that
/// `y` post-dominates that successor, and `y` does not post-dominate `x`.
///
/// Returns, for every node, the set of nodes it is *directly* control
/// dependent on (deduplicated, sorted).
pub fn control_dependence(g: &DiGraph, exit: usize) -> Vec<Vec<usize>> {
    let rev = g.reversed();
    let pdom = DomTree::compute(&rev, exit);
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); g.len()];
    for x in 0..g.len() {
        for &s in g.succs(x) {
            if !pdom.is_reachable(s) {
                continue;
            }
            // Walk the post-dominator tree from s up to (but excluding)
            // ipdom(x); every node on the way is control dependent on x.
            let stop = pdom.idom(x);
            let mut y = s;
            loop {
                if Some(y) == stop || (stop.is_none() && y == exit && x != exit) {
                    break;
                }
                deps[y].push(x);
                if y == exit {
                    break;
                }
                match pdom.idom(y) {
                    Some(p) => y = p,
                    None => break,
                }
            }
        }
    }
    for d in &mut deps {
        d.sort_unstable();
        d.dedup();
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic diamond:
    /// ```text
    ///   0 -> 1 -> 3
    ///   0 -> 2 -> 3
    /// ```
    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn dominators_of_diamond() {
        let g = diamond();
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(0));
        assert_eq!(d.idom(3), Some(0));
        assert!(d.dominates(0, 3));
        assert!(!d.dominates(1, 3));
        assert!(d.dominates(3, 3));
    }

    #[test]
    fn control_dependence_of_diamond() {
        let g = diamond();
        let cd = control_dependence(&g, 3);
        assert_eq!(cd[1], vec![0]);
        assert_eq!(cd[2], vec![0]);
        assert!(cd[3].is_empty());
        assert!(cd[0].is_empty());
    }

    /// Nested one-armed ifs:
    /// ```text
    /// 0 -> 1 -> 2 -> 3 -> 4   (all-true path)
    /// 0 -> 4, 1 -> 3          (branch exits)
    /// ```
    /// Node 2 is directly control dependent on 1; node 1 on 0; node 3 on 0.
    #[test]
    fn control_dependence_of_nested_ifs() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 4);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let cd = control_dependence(&g, 4);
        assert_eq!(cd[1], vec![0]);
        assert_eq!(cd[2], vec![1]);
        assert_eq!(cd[3], vec![0]);
        assert!(cd[4].is_empty());
    }

    #[test]
    fn dominators_of_textbook_graph() {
        // Appel-style example with a loop.
        let mut g = DiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 4);
        g.add_edge(3, 4);
        g.add_edge(4, 1); // back edge
        g.add_edge(4, 5);
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(4), Some(1));
        assert_eq!(d.idom(5), Some(4));
    }

    #[test]
    fn unreachable_nodes_are_flagged() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        // node 2 unreachable
        let d = DomTree::compute(&g, 0);
        assert!(d.is_reachable(1));
        assert!(!d.is_reachable(2));
        assert_eq!(d.idom(2), None);
        assert!(!d.dominates(0, 2));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let g = diamond();
        let rpo = g.reverse_post_order(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), 3);
    }
}

//! Graphviz export of program dependence graphs and slices.
//!
//! Renders the Fig. 3-style picture: solid arrows for data dependence,
//! dashed arrows for control dependence, and labeled `(ᵢ` / `)ᵢ` edges for
//! calls and returns. Slice vertices can be highlighted to visualize
//! `G[Π]`.

use crate::graph::{FlowTarget, Pdg, Vertex};
use crate::slice::Slice;
use fusion_ir::ssa::{DefKind, Program};
use std::fmt::Write as _;

/// Renders the whole-program dependence graph in DOT syntax.
pub fn pdg_to_dot(program: &Program, pdg: &Pdg, slice: Option<&Slice>) -> String {
    let mut s = String::from("digraph pdg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        let fname = program.name(func.name);
        let _ = writeln!(s, "  subgraph cluster_{} {{", func.id.0);
        let _ = writeln!(s, "    label=\"{fname}\";");
        for def in &func.defs {
            let in_slice = slice
                .and_then(|sl| sl.funcs.get(&func.id))
                .map(|fs| fs.verts.contains(&def.var))
                .unwrap_or(false);
            let style = if in_slice {
                ", style=filled, fillcolor=lightyellow"
            } else {
                ""
            };
            let label = match &def.kind {
                DefKind::Param { index } => format!("{} = ⟨param {index}⟩", def.var),
                DefKind::Const {
                    value,
                    is_null: true,
                } => format!("{} = null({value})", def.var),
                DefKind::Const { value, .. } => format!("{} = {value}", def.var),
                DefKind::Copy { src } => format!("{} = {src}", def.var),
                DefKind::Binary { op, lhs, rhs } => {
                    format!("{} = {lhs} {op:?} {rhs}", def.var)
                }
                DefKind::Ite {
                    cond,
                    then_v,
                    else_v,
                } => {
                    format!("{} = ite({cond}, {then_v}, {else_v})", def.var)
                }
                DefKind::Call { callee, site, .. } => {
                    let callee_name = program.name(program.func(*callee).name);
                    format!("{} = {callee_name}(…) [{site}]", def.var)
                }
                DefKind::Branch { cond } => format!("if {cond}"),
                DefKind::Return { src } => format!("return {src}"),
            };
            let _ = writeln!(
                s,
                "    \"{}_{}\" [label=\"{}\"{}];",
                func.id.0, def.var.0, label, style
            );
        }
        let _ = writeln!(s, "  }}");
    }
    // Edges.
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        for def in &func.defs {
            let from = Vertex::new(func.id, def.var);
            for target in pdg.flow_targets(program, from) {
                match target {
                    FlowTarget::Local { to, .. } | FlowTarget::ThroughExtern { to, .. } => {
                        let _ = writeln!(
                            s,
                            "  \"{}_{}\" -> \"{}_{}\";",
                            func.id.0, def.var.0, func.id.0, to.0
                        );
                    }
                    FlowTarget::IntoCallee {
                        site,
                        callee,
                        param,
                    } => {
                        let _ = writeln!(
                            s,
                            "  \"{}_{}\" -> \"{}_{}\" [label=\"({}\", color=blue];",
                            func.id.0, def.var.0, callee.0, param.0, site.0
                        );
                    }
                    FlowTarget::BackToCaller { site, caller, dst } => {
                        let _ = writeln!(
                            s,
                            "  \"{}_{}\" -> \"{}_{}\" [label=\"){}\", color=blue];",
                            func.id.0, def.var.0, caller.0, dst.0, site.0
                        );
                    }
                }
            }
            if let Some(g) = def.guard {
                let _ = writeln!(
                    s,
                    "  \"{}_{}\" -> \"{}_{}\" [style=dashed, color=gray];",
                    func.id.0, def.var.0, func.id.0, g.0
                );
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Pdg;
    use crate::paths::{DependencePath, Link};
    use crate::slice::compute_slice;
    use fusion_ir::{compile, CompileOptions};

    #[test]
    fn renders_figure3_shape() {
        let p = compile(
            "fn bar(x) { let y = x * 2; return y; }\n\
             fn foo(a) { let c = bar(a); if (c > 4) { return c; } return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let g = Pdg::build(&p);
        let dot = pdg_to_dot(&p, &g, None);
        assert!(dot.starts_with("digraph pdg {"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("label=\"(0\"")); // call edge parenthesis
        assert!(dot.contains("label=\")0\"")); // return edge parenthesis
        assert!(dot.contains("style=dashed")); // control dependence
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn slice_vertices_are_highlighted() {
        let p = compile(
            "extern fn deref(q);\n\
             fn f(x) { let n = null; let r = 1; if (x > 0) { r = n; } deref(r); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let g = Pdg::build(&p);
        let f = p.func_by_name("f").unwrap();
        // Build the null path by hand (source → merge → sink arg use).
        let null_def = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, fusion_ir::DefKind::Const { is_null: true, .. }))
            .unwrap();
        let ite = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, fusion_ir::DefKind::Ite { then_v, .. } if then_v == null_def.var))
            .unwrap();
        let mut path = DependencePath::unit(crate::graph::Vertex::new(f.id, null_def.var));
        path.push(Link::Local, crate::graph::Vertex::new(f.id, ite.var));
        let slice = compute_slice(&p, &g, &[path]);
        let dot = pdg_to_dot(&p, &g, Some(&slice));
        assert!(dot.contains("lightyellow"));
    }
}

//! The linear allotropic transformation (Rules 4–8 of Fig. 8) plus the
//! context-sensitive cloning of Algorithm 4.
//!
//! Given a [`Slice`], this module produces the first-order path condition
//! `φ_Π`. Context-sensitivity is achieved exactly as §3.2.1 describes:
//! "we clone the callee function at each call site", i.e. every sliced
//! vertex is instantiated once per *calling context* (call string), with
//! call/return parenthesis labels resolved into parameter- and
//! return-binding equations (Rules 7–8).
//!
//! The number of instances is exponential in call depth in the worst case —
//! that is the condition-cloning cost the paper eliminates — so translation
//! carries an instance budget and reports blow-ups like a memory-out.

use crate::slice::{Constraint, ConstraintKind, Slice};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Op, Program, VarId, WORD_BITS};
use fusion_smt::term::{BvOp, BvPred, Sort, TermId, TermPool};
use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Cloning exceeded the instance budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloneBlowup {
    /// Instances materialized when the budget tripped.
    pub instances: usize,
    /// The configured budget.
    pub budget: usize,
}

impl fmt::Display for CloneBlowup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "context-sensitive cloning exceeded the instance budget ({} > {})",
            self.instances, self.budget
        )
    }
}

impl Error for CloneBlowup {}

/// Options for [`translate`].
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Maximum number of `(context, function)` instances to clone.
    pub max_instances: usize,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        Self {
            max_instances: 1 << 16,
        }
    }
}

/// The produced path condition and its size accounting.
#[derive(Debug, Clone, Copy)]
pub struct Translation {
    /// The path condition `φ_Π`.
    pub formula: TermId,
    /// `(context, function)` instances materialized (clones).
    pub instances: usize,
    /// Equations emitted across all instances.
    pub equations: usize,
}

/// Encodes an IR operator over 32-bit terms, with C-style 0/1 booleans for
/// predicates (matching [`fusion_ir::ssa::Op::eval`] exactly).
pub fn encode_op(pool: &mut TermPool, op: Op, a: TermId, b: TermId) -> TermId {
    let w = WORD_BITS;
    let as01 = |pool: &mut TermPool, cond: TermId| {
        let one = pool.bv_const(1, w);
        let zero = pool.bv_const(0, w);
        pool.ite(cond, one, zero)
    };
    match op {
        Op::Add => pool.bv(BvOp::Add, a, b),
        Op::Sub => pool.bv(BvOp::Sub, a, b),
        Op::Mul => pool.bv(BvOp::Mul, a, b),
        Op::Udiv => pool.bv(BvOp::Udiv, a, b),
        Op::Urem => pool.bv(BvOp::Urem, a, b),
        Op::And => pool.bv(BvOp::And, a, b),
        Op::Or => pool.bv(BvOp::Or, a, b),
        Op::Xor => pool.bv(BvOp::Xor, a, b),
        Op::Shl => pool.bv(BvOp::Shl, a, b),
        Op::Lshr => pool.bv(BvOp::Lshr, a, b),
        Op::Ashr => pool.bv(BvOp::Ashr, a, b),
        Op::Slt => {
            let c = pool.pred(BvPred::Slt, a, b);
            as01(pool, c)
        }
        Op::Sle => {
            let c = pool.pred(BvPred::Sle, a, b);
            as01(pool, c)
        }
        Op::Ult => {
            let c = pool.pred(BvPred::Ult, a, b);
            as01(pool, c)
        }
        Op::Ule => {
            let c = pool.pred(BvPred::Ule, a, b);
            as01(pool, c)
        }
        Op::Eq => {
            let c = pool.eq(a, b);
            as01(pool, c)
        }
        Op::Ne => {
            let c = pool.ne(a, b);
            as01(pool, c)
        }
    }
}

/// The "is true" reading of a word-valued condition: `v ≠ 0`.
pub fn truthy(pool: &mut TermPool, v: TermId) -> TermId {
    let zero = pool.bv_const(0, WORD_BITS);
    pool.ne(v, zero)
}

/// The SMT variable for IR variable `var` of `func` under calling context
/// `ctx` — the renamed clone the paper's instantiation produces.
pub fn instance_var(pool: &mut TermPool, ctx: &[CallSiteId], func: FuncId, var: VarId) -> TermId {
    let mut name = format!("f{}", func.0);
    for s in ctx {
        name.push('@');
        name.push_str(&s.0.to_string());
    }
    name.push_str(&format!(":v{}", var.0));
    pool.var(&name, Sort::Bv(WORD_BITS))
}

/// Provenance of SMT instance variables: which IR definition each renamed
/// clone came from.
///
/// Because abstract facts are memoized per *function* (never per call site),
/// every clone of the same definition shares one fact; the origin map is
/// what lets a solver seed formula preprocessing with those per-function
/// facts on first contact (the §3.2.3 preprocessing discipline).
#[derive(Debug, Clone, Default)]
pub struct VarOrigins {
    map: std::collections::HashMap<fusion_smt::term::VarIdx, (FuncId, VarId)>,
}

impl VarOrigins {
    /// An empty origin map.
    pub fn new() -> VarOrigins {
        VarOrigins::default()
    }

    /// Records that SMT variable `idx` instantiates `func`'s `var`.
    pub fn record(&mut self, idx: fusion_smt::term::VarIdx, func: FuncId, var: VarId) {
        self.map.insert(idx, (func, var));
    }

    /// The IR definition `idx` instantiates, if tracked.
    pub fn get(&self, idx: fusion_smt::term::VarIdx) -> Option<(FuncId, VarId)> {
        self.map.get(&idx).copied()
    }

    /// Iterates over all `(smt var, (func, var))` origin entries.
    pub fn iter(&self) -> impl Iterator<Item = (fusion_smt::term::VarIdx, (FuncId, VarId))> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of tracked variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no origins are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// [`instance_var`] that also records the variable's IR origin, so callers
/// can later seed preprocessing with per-function abstract facts.
pub fn instance_var_tracked(
    pool: &mut TermPool,
    ctx: &[CallSiteId],
    func: FuncId,
    var: VarId,
    origins: &mut VarOrigins,
) -> TermId {
    let t = instance_var(pool, ctx, func, var);
    if let fusion_smt::term::TermKind::Var(idx) = *pool.kind(t) {
        origins.record(idx, func, var);
    }
    t
}

/// Translates a slice to its path condition (Rules 4–8 + cloning).
///
/// # Errors
///
/// Returns [`CloneBlowup`] if more than `options.max_instances` clones are
/// required.
pub fn translate(
    program: &Program,
    slice: &Slice,
    pool: &mut TermPool,
    options: &TranslateOptions,
) -> Result<Translation, CloneBlowup> {
    let mut parts: Vec<TermId> = Vec::new();
    let mut equations = 0usize;
    let mut instances: HashSet<(Vec<CallSiteId>, FuncId)> = HashSet::new();
    let mut work: VecDeque<(Vec<CallSiteId>, FuncId)> = VecDeque::new();
    let schedule = |instances: &mut HashSet<(Vec<CallSiteId>, FuncId)>,
                    work: &mut VecDeque<(Vec<CallSiteId>, FuncId)>,
                    ctx: Vec<CallSiteId>,
                    f: FuncId| {
        if instances.insert((ctx.clone(), f)) {
            work.push_back((ctx, f));
        }
    };

    // Rule 4/5 + Rule 1 gates: the context-tagged path constraints.
    for Constraint { ctx, func, kind } in &slice.constraints {
        schedule(&mut instances, &mut work, ctx.clone(), *func);
        let f = program.func(*func);
        match kind {
            ConstraintKind::BranchTrue { branch } => {
                let DefKind::Branch { cond } = f.def(*branch).kind else {
                    unreachable!("guards are branches")
                };
                let cv = instance_var(pool, ctx, *func, cond);
                parts.push(truthy(pool, cv));
            }
            ConstraintKind::IteGate { ite, taken_then } => {
                let DefKind::Ite { cond, .. } = f.def(*ite).kind else {
                    unreachable!("gated vertices are ites")
                };
                let cv = instance_var(pool, ctx, *func, cond);
                let t = truthy(pool, cv);
                parts.push(if *taken_then { t } else { pool.not(t) });
            }
        }
        equations += 1;
    }

    // Rules 6–8 per instance, scheduling callees (down) and callers (up).
    while let Some((ctx, fid)) = work.pop_front() {
        if instances.len() > options.max_instances {
            return Err(CloneBlowup {
                instances: instances.len(),
                budget: options.max_instances,
            });
        }
        let Some(fs) = slice.funcs.get(&fid) else {
            continue;
        };
        let func = program.func(fid);
        for &v in &fs.verts {
            let def = func.def(v);
            let lhs = instance_var(pool, &ctx, fid, v);
            let equation = match &def.kind {
                DefKind::Param { index } => {
                    // Rule 7: bind to the actual at the instantiating call
                    // site; the outermost frame's parameters are free.
                    let Some(&site) = ctx.last() else { continue };
                    let cs = program.call_site(site);
                    let caller_ctx = &ctx[..ctx.len() - 1];
                    let caller = program.func(cs.caller);
                    let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                        unreachable!("call sites point at calls")
                    };
                    let actual = args[*index];
                    let rhs = instance_var(pool, caller_ctx, cs.caller, actual);
                    schedule(&mut instances, &mut work, caller_ctx.to_vec(), cs.caller);
                    pool.eq(lhs, rhs)
                }
                DefKind::Const { value, .. } => {
                    let k = pool.bv_const(*value as u64, WORD_BITS);
                    pool.eq(lhs, k)
                }
                DefKind::Copy { src } | DefKind::Return { src } => {
                    let rhs = instance_var(pool, &ctx, fid, *src);
                    pool.eq(lhs, rhs)
                }
                DefKind::Binary { op, lhs: a, rhs: b } => {
                    let ta = instance_var(pool, &ctx, fid, *a);
                    let tb = instance_var(pool, &ctx, fid, *b);
                    let rhs = encode_op(pool, *op, ta, tb);
                    pool.eq(lhs, rhs)
                }
                DefKind::Ite {
                    cond,
                    then_v,
                    else_v,
                } => {
                    let tc = instance_var(pool, &ctx, fid, *cond);
                    let tt = instance_var(pool, &ctx, fid, *then_v);
                    let te = instance_var(pool, &ctx, fid, *else_v);
                    let c = truthy(pool, tc);
                    let rhs = pool.ite(c, tt, te);
                    pool.eq(lhs, rhs)
                }
                DefKind::Call { callee, site, .. } => {
                    let callee_f = program.func(*callee);
                    if callee_f.is_extern {
                        // Empty function: unconstrained result.
                        continue;
                    }
                    // Rule 8: dst = callee's return under the deeper
                    // context. This is the cloning point.
                    let mut sub_ctx = ctx.clone();
                    sub_ctx.push(*site);
                    let ret = callee_f.ret.expect("non-extern has a return");
                    let rhs = instance_var(pool, &sub_ctx, *callee, ret);
                    schedule(&mut instances, &mut work, sub_ctx, *callee);
                    pool.eq(lhs, rhs)
                }
                DefKind::Branch { .. } => continue, // Rule 6 "others": true
            };
            equations += 1;
            parts.push(equation);
        }
    }

    let formula = pool.and(&parts);
    Ok(Translation {
        formula,
        instances: instances.len(),
        equations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Pdg, Vertex};
    use crate::paths::{DependencePath, Link};
    use crate::slice::compute_slice;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::{smt_solve, SolverConfig};

    fn setup(src: &str) -> (Program, Pdg) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        (p, g)
    }

    /// Builds the null → gated-ite chain → return path in `foo`.
    fn null_return_path(p: &Program, foo_name: &str) -> DependencePath {
        let foo = p.func_by_name(foo_name).unwrap();
        let null_def = foo
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Const { is_null: true, .. }))
            .expect("null source");
        let mut path = DependencePath::unit(Vertex::new(foo.id, null_def.var));
        // Greedy walk: repeatedly step to a user that is an ite taking the
        // current vertex as an input, ending at the return.
        let mut cur = null_def.var;
        loop {
            let next = foo.defs.iter().find(|d| match &d.kind {
                DefKind::Ite { then_v, else_v, .. } => *then_v == cur || *else_v == cur,
                DefKind::Return { src } => *src == cur,
                _ => false,
            });
            match next {
                Some(d) => {
                    path.push(Link::Local, Vertex::new(foo.id, d.var));
                    cur = d.var;
                    if matches!(d.kind, DefKind::Return { .. }) {
                        break;
                    }
                }
                None => break,
            }
        }
        path
    }

    #[test]
    fn figure1_condition_is_satisfiable() {
        // The paper's running example: the null pointer escapes when
        // c < d, i.e. bar(a) < bar(b) — satisfiable.
        let (p, g) = setup(
            "fn bar(x) { let y = x * 2; let z = y; return z; }\n\
             fn foo(a, b) {\n\
               let pp = null;\n\
               let c = bar(a);\n\
               let d = bar(b);\n\
               if (c < d) { return pp; }\n\
               return 1;\n\
             }",
        );
        let path = null_return_path(&p, "foo");
        assert!(path.nodes.len() >= 3, "path: {path:?}");
        let slice = compute_slice(&p, &g, &[path]);
        let mut pool = TermPool::new();
        let tr = translate(&p, &slice, &mut pool, &TranslateOptions::default()).unwrap();
        // bar is cloned at both call sites: instances = foo + 2×bar.
        assert_eq!(tr.instances, 3);
        let (r, _) = smt_solve(&mut pool, tr.formula, &SolverConfig::default());
        assert!(r.is_sat());
    }

    #[test]
    fn infeasible_path_is_unsat() {
        // The branch condition contradicts itself: x > 5 && x < 3.
        let (p, g) = setup(
            "fn foo(x) {\n\
               let pp = null;\n\
               if (x > 5) { if (x < 3) { return pp; } }\n\
               return 1;\n\
             }",
        );
        let path = null_return_path(&p, "foo");
        let slice = compute_slice(&p, &g, &[path]);
        let mut pool = TermPool::new();
        let tr = translate(&p, &slice, &mut pool, &TranslateOptions::default()).unwrap();
        let (r, _) = smt_solve(&mut pool, tr.formula, &SolverConfig::default());
        assert!(r.is_unsat());
    }

    #[test]
    fn feasible_concrete_branch() {
        let (p, g) = setup(
            "fn foo(x) {\n\
               let pp = null;\n\
               let y = x * 2;\n\
               if (y == 14) { return pp; }\n\
               return 1;\n\
             }",
        );
        let path = null_return_path(&p, "foo");
        let slice = compute_slice(&p, &g, &[path]);
        let mut pool = TermPool::new();
        let tr = translate(&p, &slice, &mut pool, &TranslateOptions::default()).unwrap();
        let (r, _) = smt_solve(&mut pool, tr.formula, &SolverConfig::default());
        assert!(r.is_sat()); // x = 7
    }

    #[test]
    fn clone_count_grows_with_call_sites() {
        // Chain of functions each calling the next twice: instance count
        // is exponential in depth — the condition-cloning problem.
        let src = "\
            fn leaf(x) { return x + 1; }\n\
            fn mid1(x) { return leaf(x) + leaf(x + 1); }\n\
            fn mid2(x) { return mid1(x) + mid1(x + 1); }\n\
            fn foo(a) {\n\
              let pp = null;\n\
              if (mid2(a) == 9) { return pp; }\n\
              return 1;\n\
            }";
        let (p, g) = setup(src);
        let path = null_return_path(&p, "foo");
        let slice = compute_slice(&p, &g, &[path]);
        let mut pool = TermPool::new();
        let tr = translate(&p, &slice, &mut pool, &TranslateOptions::default()).unwrap();
        // foo + mid2 + 2×mid1 + 4×leaf = 8 instances.
        assert_eq!(tr.instances, 8);
        // And the budget trips when set below that.
        let mut pool2 = TermPool::new();
        let err = translate(
            &p,
            &slice,
            &mut pool2,
            &TranslateOptions { max_instances: 4 },
        )
        .unwrap_err();
        assert!(err.instances > 4);
    }

    #[test]
    fn empty_slice_translates_to_true() {
        let (p, _) = setup("fn f(x) { return x; }");
        let slice = Slice::default();
        let mut pool = TermPool::new();
        let tr = translate(&p, &slice, &mut pool, &TranslateOptions::default()).unwrap();
        assert_eq!(pool.as_bool_const(tr.formula), Some(true));
    }
}

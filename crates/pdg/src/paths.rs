//! Data-dependence paths (the `π` of Algorithms 1–6) and calling contexts.
//!
//! A path is the sequence of PDG vertices a data-flow fact traverses. Links
//! between consecutive vertices record whether the step stayed in the same
//! function, entered a callee through a labeled call edge `(ᵢ`, or returned
//! to a caller through `)ᵢ` — the CFL-reachability labeling of §3.1.
//!
//! [`DependencePath::contexts`] re-derives each vertex's calling context
//! (call string) relative to the path's outermost frame, which is what the
//! translation to path conditions needs to clone callees per call site.

use crate::graph::Vertex;
use fusion_ir::ssa::CallSiteId;

/// How a path moves between two consecutive vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// An intra-procedural data-dependence edge.
    Local,
    /// A call edge `(ᵢ` into the callee.
    Enter(CallSiteId),
    /// A return edge `)ᵢ` back into the caller.
    Exit(CallSiteId),
}

/// A calling context: the stack of call sites from the path's outermost
/// frame down to the current function (empty = outermost).
pub type Context = Vec<CallSiteId>;

/// One data-dependence path on the PDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencePath {
    /// The traversed vertices, in order.
    pub nodes: Vec<Vertex>,
    /// `links[i]` connects `nodes[i]` to `nodes[i + 1]`.
    pub links: Vec<Link>,
}

impl DependencePath {
    /// A single-vertex path.
    pub fn unit(v: Vertex) -> Self {
        Self {
            nodes: vec![v],
            links: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn push(&mut self, link: Link, v: Vertex) {
        self.links.push(link);
        self.nodes.push(v);
    }

    /// The first vertex (the fact's source).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty (paths are constructed non-empty).
    pub fn source(&self) -> Vertex {
        self.nodes[0]
    }

    /// The last vertex (where the fact currently sits / the sink).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn sink(&self) -> Vertex {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Whether the path's call/return labels are partially balanced (a
    /// realizable CFL path): every `Exit(s)` either matches the most recent
    /// unmatched `Enter(s)` or occurs with an empty stack (escaping to an
    /// outer, unentered frame).
    pub fn is_realizable(&self) -> bool {
        let mut stack: Vec<CallSiteId> = Vec::new();
        for link in &self.links {
            match link {
                Link::Local => {}
                Link::Enter(s) => stack.push(*s),
                Link::Exit(s) => {
                    if let Some(top) = stack.pop() {
                        if top != *s {
                            return false;
                        }
                    }
                    // Empty stack: fine — the path escapes upward.
                }
            }
        }
        true
    }

    /// The calling context of every vertex, relative to the path's
    /// *outermost* frame (the shallowest frame the path ever occupies).
    ///
    /// A prefix running inside a callee that later exits to its caller is
    /// retroactively assigned the deeper context, e.g. a path starting in
    /// `g`, exiting to `f` via site `s`, has contexts `[s]` for the `g`
    /// prefix and `[]` for the `f` suffix.
    pub fn contexts(&self) -> Vec<Context> {
        // First pass: signed depth profile.
        let n = self.nodes.len();
        let mut depth = vec![0i32; n];
        for (i, link) in self.links.iter().enumerate() {
            let delta = match link {
                Link::Local => 0,
                Link::Enter(_) => 1,
                Link::Exit(_) => -1,
            };
            depth[i + 1] = depth[i] + delta;
        }
        let min = depth.iter().copied().min().unwrap_or(0);
        // Second pass: maintain the explicit call string. When an Exit
        // occurs at the outermost-so-far level, the *preceding* vertices
        // were one level deeper: we reconstruct by tracking the stack and,
        // for prefix frames, back-filling from the exits.
        //
        // Simpler equivalent: walk backwards from the end? Instead, walk
        // forward keeping a stack seeded with placeholders for the levels
        // below zero, then resolve placeholders from the Exit labels.
        let offset = (-min) as usize;
        let mut stack: Vec<Option<CallSiteId>> = vec![None; offset];
        let mut contexts: Vec<Vec<Option<CallSiteId>>> = Vec::with_capacity(n);
        contexts.push(stack.clone());
        let mut placeholders_resolved: Vec<(usize, CallSiteId)> = Vec::new();
        for link in &self.links {
            match link {
                Link::Local => {}
                Link::Enter(s) => stack.push(Some(*s)),
                Link::Exit(s) => {
                    let top = stack.pop().expect("depth profile keeps stack non-empty");
                    if top.is_none() {
                        // This placeholder level is now known: it was `s`.
                        placeholders_resolved.push((stack.len(), *s));
                    }
                }
            }
            contexts.push(stack.clone());
        }
        // Resolve placeholders in all recorded stacks.
        let mut resolved: Vec<Option<CallSiteId>> = vec![None; offset];
        for (level, site) in placeholders_resolved {
            resolved[level] = Some(site);
        }
        contexts
            .into_iter()
            .map(|ctx| {
                ctx.into_iter()
                    .enumerate()
                    .map(|(level, slot)| {
                        slot.or_else(|| resolved.get(level).copied().flatten())
                            .expect("every placeholder level is exited exactly once")
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::ssa::{FuncId, VarId};

    fn v(f: u32, x: u32) -> Vertex {
        Vertex::new(FuncId(f), VarId(x))
    }

    #[test]
    fn unit_path() {
        let p = DependencePath::unit(v(0, 1));
        assert_eq!(p.source(), p.sink());
        assert!(p.is_realizable());
        assert_eq!(p.contexts(), vec![Vec::<CallSiteId>::new()]);
    }

    #[test]
    fn enter_exit_balanced() {
        let mut p = DependencePath::unit(v(0, 1));
        p.push(Link::Enter(CallSiteId(3)), v(1, 0));
        p.push(Link::Local, v(1, 2));
        p.push(Link::Exit(CallSiteId(3)), v(0, 5));
        assert!(p.is_realizable());
        let ctxs = p.contexts();
        assert_eq!(ctxs[0], vec![]);
        assert_eq!(ctxs[1], vec![CallSiteId(3)]);
        assert_eq!(ctxs[2], vec![CallSiteId(3)]);
        assert_eq!(ctxs[3], vec![]);
    }

    #[test]
    fn mismatched_exit_is_unrealizable() {
        let mut p = DependencePath::unit(v(0, 1));
        p.push(Link::Enter(CallSiteId(3)), v(1, 0));
        p.push(Link::Exit(CallSiteId(4)), v(0, 5));
        assert!(!p.is_realizable());
    }

    #[test]
    fn upward_escape_reroots_contexts() {
        // Starts in g (frame depth -1 relative to f), exits via site 7.
        let mut p = DependencePath::unit(v(1, 2));
        p.push(Link::Local, v(1, 3));
        p.push(Link::Exit(CallSiteId(7)), v(0, 9));
        assert!(p.is_realizable());
        let ctxs = p.contexts();
        assert_eq!(ctxs[0], vec![CallSiteId(7)]);
        assert_eq!(ctxs[1], vec![CallSiteId(7)]);
        assert_eq!(ctxs[2], vec![]);
    }

    #[test]
    fn exit_then_reenter() {
        // g --exit s1--> f --enter s2--> h
        let mut p = DependencePath::unit(v(1, 0));
        p.push(Link::Exit(CallSiteId(1)), v(0, 4));
        p.push(Link::Enter(CallSiteId(2)), v(2, 0));
        let ctxs = p.contexts();
        assert_eq!(ctxs[0], vec![CallSiteId(1)]);
        assert_eq!(ctxs[1], vec![]);
        assert_eq!(ctxs[2], vec![CallSiteId(2)]);
    }

    #[test]
    fn deep_nesting_contexts() {
        let mut p = DependencePath::unit(v(0, 0));
        p.push(Link::Enter(CallSiteId(1)), v(1, 0));
        p.push(Link::Enter(CallSiteId(2)), v(2, 0));
        p.push(Link::Exit(CallSiteId(2)), v(1, 5));
        p.push(Link::Exit(CallSiteId(1)), v(0, 7));
        let ctxs = p.contexts();
        assert_eq!(ctxs[2], vec![CallSiteId(1), CallSiteId(2)]);
        assert_eq!(ctxs[4], vec![]);
        assert!(p.is_realizable());
    }
}

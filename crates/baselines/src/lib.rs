//! # fusion-baselines
//!
//! The comparison systems of the paper's evaluation (§5):
//!
//! * [`pinpoint`] — the conventional, non-fused design (Algorithm 2):
//!   eager condition computation, persistent summary caching, full
//!   condition cloning at call sites; plus the `+QE`, `+LFS` and `+HFS`
//!   tactic variants;
//! * [`ar`] — the abstraction-refinement variant (Pinpoint+AR), which
//!   starts from intra-procedural conditions and refines by depth, paying
//!   one solver call per refinement;
//! * [`inferlike`] — a compositional, path-insensitive analyzer with
//!   bounded summary composition, standing in for Infer in Table 5.
//!
//! All engines implement [`fusion::engine::FeasibilityEngine`] (or return
//! the same [`fusion::engine::AnalysisRun`] shape), so the benchmark
//! harnesses compare like with like.

#![warn(missing_docs)]

pub mod ar;
pub mod inferlike;
pub mod pinpoint;

pub use ar::ArEngine;
pub use inferlike::{analyze_inferlike, InferOptions};
pub use pinpoint::{PinpointEngine, Tactic};

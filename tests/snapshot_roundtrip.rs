//! The snapshot codec must be lossless and paranoid.
//!
//! Lossless: writing an arbitrary generated program (and its absint
//! facts) into a [`fusion::snapshot`] container and reading it back
//! yields a program with identical structure, names, and — the real
//! invariant — identical analysis reports. Paranoid: *any* corruption —
//! a flipped byte, a truncation at any offset, a version skew — must
//! surface as a position-annotated [`fusion::SnapshotError`], never a
//! panic, a hang, or a silently wrong program.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{analyze_multi_with_cache, AnalysisOptions, Feasibility, MultiAnalysisRun};
use fusion::graph_solver::FusionSolver;
use fusion::snapshot::{self, open_bytes, SnapshotWriter};
use fusion::ProgramFacts;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

fn compile_src(src: &str) -> Program {
    compile(src, CompileOptions::default()).expect("compile")
}

fn container(program: &Program) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    snapshot::write_program(&mut w, program);
    let facts = ProgramFacts::compute(program);
    snapshot::write_facts(&mut w, program, &facts);
    w.finish()
}

fn report(program: &Program) -> Vec<(usize, Feasibility, usize)> {
    let pdg = Pdg::build(program);
    let set = CheckerSet::new(fusion::checkers::default_checkers());
    let cache = VerdictCache::new();
    let mut engine = FusionSolver::new(SolverConfig::default());
    let run: MultiAnalysisRun = analyze_multi_with_cache(
        program,
        &pdg,
        &set,
        &mut engine,
        &AnalysisOptions::new(),
        Some(&cache),
    );
    run.checkers
        .iter()
        .enumerate()
        .flat_map(|(i, b)| {
            b.reports
                .iter()
                .map(move |r| (i, r.verdict, r.path.nodes.len()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Write → read is the identity on structure, names, and reports.
    #[test]
    fn program_and_facts_round_trip(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 6, ..Default::default() };
        let program = compile_src(&generate(&cfg).to_source());
        let snap = open_bytes(container(&program)).expect("open");
        let reread = snapshot::read_program(&snap).expect("read program");

        prop_assert_eq!(program.functions.len(), reread.functions.len());
        prop_assert_eq!(program.call_sites.len(), reread.call_sites.len());
        for (a, b) in program.functions.iter().zip(&reread.functions) {
            prop_assert_eq!(program.name(a.name), reread.name(b.name));
            prop_assert_eq!(a.is_extern, b.is_extern);
            prop_assert_eq!(&a.params, &b.params);
            prop_assert_eq!(a.ret, b.ret);
            prop_assert_eq!(a.defs.len(), b.defs.len());
            for (da, db) in a.defs.iter().zip(&b.defs) {
                prop_assert_eq!(da.var, db.var);
                prop_assert_eq!(da.guard, db.guard);
                prop_assert_eq!(&da.kind, &db.kind);
            }
        }
        prop_assert!(
            fusion_ir::validate::check_program(&reread).is_empty(),
            "reread program passes the full invariant suite"
        );
        // Facts survive byte-for-byte: recomputing from the reread
        // program equals reading the serialized section.
        let read_facts = snapshot::read_facts(&snap, &reread).expect("read facts");
        let computed = ProgramFacts::compute(&reread);
        for f in &reread.functions {
            for d in &f.defs {
                prop_assert_eq!(
                    read_facts.value(f.id, d.var),
                    computed.value(f.id, d.var),
                    "facts diverge at {:?}/{:?}", f.id, d.var
                );
            }
        }
        // The invariant that matters: the restored program analyzes
        // identically.
        prop_assert_eq!(report(&program), report(&reread), "seed {}", seed);
    }

    /// A flipped byte anywhere is an error (or, if it lands in dead
    /// padding, a still-consistent read) — never a panic.
    #[test]
    fn corruption_never_panics(seed in 0u64..100_000, pos in 0usize..10_000, flip in 1u8..255) {
        let cfg = GenConfig { seed, functions: 3, ..Default::default() };
        let program = compile_src(&generate(&cfg).to_source());
        let mut bytes = container(&program);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        // Every decode path must return, not panic; when it returns Ok
        // the decoded program must still satisfy program invariants.
        if let Ok(snap) = open_bytes(bytes) {
            match snapshot::read_program(&snap) {
                Ok(p) => {
                    // A checksum collision is effectively impossible; a
                    // flip that decodes cleanly must have hit a section
                    // we didn't read. The result must still be sane.
                    prop_assert!(fusion_ir::validate::check_program(&p).is_empty());
                }
                Err(e) => {
                    prop_assert!(!e.to_string().is_empty());
                }
            }
            let _ = snapshot::read_callgraph(&snap);
            let _ = snapshot::read_meta(&snap);
        }
    }

    /// Truncation at every prefix length is an error, never a panic.
    #[test]
    fn truncation_never_panics(seed in 0u64..100_000, cut in 0usize..10_000) {
        let cfg = GenConfig { seed, functions: 3, ..Default::default() };
        let program = compile_src(&generate(&cfg).to_source());
        let bytes = container(&program);
        let cut = cut % bytes.len();
        let truncated = bytes[..cut].to_vec();
        match open_bytes(truncated) {
            Ok(snap) => {
                // The header may survive the cut; the payload reads must
                // then fail cleanly.
                prop_assert!(snapshot::read_program(&snap).is_err());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

/// Version skew and a bad magic are position-annotated errors.
#[test]
fn version_and_magic_are_checked() {
    let program = compile_src("fn f(x) { return x; }");
    let bytes = container(&program);
    let mut wrong_version = bytes.clone();
    wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = open_bytes(wrong_version).expect_err("version skew");
    assert_eq!(err.offset, 4);
    assert!(err.to_string().contains("99"), "{err}");
    let mut bad_magic = bytes;
    bad_magic[0] = b'X';
    let err = open_bytes(bad_magic).expect_err("bad magic");
    assert_eq!(err.offset, 0);
}

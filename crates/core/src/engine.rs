//! The analysis driver: propagate facts sparsely, then decide feasibility.
//!
//! This is the outer loop of Algorithm 5: sparse propagation collects Π
//! (with **no** conditions), and a pluggable [`FeasibilityEngine`] answers
//! `ir_based_smt_solve(Π)`. Engines implement the fused designs of this
//! crate or the conventional baselines of `fusion-baselines`; the driver,
//! reports and accounting are shared so comparisons are apples-to-apples.

use crate::absint::ProgramFacts;
use crate::cache::{path_set_key, CacheStats, Key128, VerdictCache};
use crate::checkers::{CheckKind, Checker, CheckerId, CheckerSet};
use crate::compact::CompactPdg;
use crate::memory::{run_accounting, Category, MemoryAccountant, BYTES_PER_DEF};
use crate::propagate::{
    discover_all_multi_compact, discover_source_for_compact, multi_source_vertices, Candidate,
    PropagateOptions,
};
use crate::slice_cache::{SliceCache, SliceCacheStats};
use crate::stream::{BoundedQueue, CloseGuard};
use fusion_ir::ssa::Program;
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The verdict on one path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Some execution takes the paths: a real flow.
    Feasible,
    /// No execution can take the paths.
    Infeasible,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Everything a feasibility query reports back.
#[derive(Debug, Clone, Copy)]
pub struct CheckOutcome {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Wall-clock time of the query.
    pub duration: Duration,
    /// DAG node count of the condition the engine built (0 if none).
    pub condition_nodes: u64,
    /// `(context, function)` clones materialized.
    pub instances: usize,
    /// Whether preprocessing alone decided the query.
    pub preprocess_decided: bool,
}

/// A per-query record kept for the Fig. 11 scatter plot.
#[derive(Debug, Clone, Copy)]
pub struct SolveRecord {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Query duration.
    pub duration: Duration,
    /// Whether preprocessing decided it.
    pub preprocess_decided: bool,
    /// Condition size (DAG nodes).
    pub condition_nodes: u64,
}

impl SolveRecord {
    /// Extracts the record from an outcome.
    pub fn from_outcome(o: &CheckOutcome) -> SolveRecord {
        SolveRecord {
            feasibility: o.feasibility,
            duration: o.duration,
            preprocess_decided: o.preprocess_decided,
            condition_nodes: o.condition_nodes,
        }
    }
}

/// A path-feasibility decision procedure — the pluggable half of the fused
/// design. Implementations must not require the caller to compute any
/// condition: they receive the dependence paths and the graph only.
pub trait FeasibilityEngine {
    /// A short identifier for tables.
    fn name(&self) -> &'static str;

    /// Decides whether the conjunction of the given paths' conditions is
    /// satisfiable (`⋀_{π ∈ Π} φ_π` of Algorithm 2).
    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome;

    /// Announces a *slice-group* boundary: the driver is about to issue a
    /// batch of related queries (same sink function, key `group`). Engines
    /// that retain per-epoch state (pools, sessions) may use this point to
    /// bound it; verdicts must not depend on where boundaries fall. The
    /// default does nothing.
    fn begin_group(&mut self, _group: u64) {}

    /// Announces that the next queries are the **alternative paths of one
    /// candidate** with canonical content key `key` and full path set
    /// `paths`. Engines may use this to compute the backward closure
    /// *once* for the union of the paths and reuse it for every
    /// alternative (the closure of a superset contains every definitional
    /// equation a subset needs, and extra definitional equations over
    /// acyclic SSA never change satisfiability — constraints are only
    /// asserted for the queried path). Valid until the next
    /// `begin_candidate` or `begin_group`. The default does nothing,
    /// which is what keeps the conventional baselines
    /// (`UnoptimizedGraphSolver`, Pinpoint, AR) faithful to the paper's
    /// per-query slicing: they bypass both the per-candidate reuse and
    /// the [`SliceCache`].
    fn begin_candidate(
        &mut self,
        _program: &Program,
        _pdg: &Pdg,
        _key: Key128,
        _paths: &[DependencePath],
    ) {
    }

    /// Hands the engine a shared slice-closure memo. Engines that slice
    /// per query may consult it; the default ignores it (baselines
    /// bypass the cache so their numbers stay faithful to the
    /// conventional design).
    fn attach_slice_cache(&mut self, _cache: Arc<SliceCache>) {}

    /// Hands the engine the program's abstract-interpretation facts
    /// ([`crate::absint::ProgramFacts`]), memoized once per function.
    /// Engines may use them to *seed* formula preprocessing (known-bits
    /// facts fire on first contact instead of being rediscovered per
    /// instance) — a refute-only optimization that never changes which
    /// candidates are reported. The default ignores them (baselines stay
    /// faithful to the conventional design).
    fn attach_absint(&mut self, _facts: Arc<crate::absint::ProgramFacts>) {}

    /// Cumulative per-stage wall/counter totals over the engine's
    /// lifetime (monotonic). The default reports zeros for engines that
    /// do not instrument their stages.
    fn stage_totals(&self) -> EngineStages {
        EngineStages::default()
    }

    /// The engine's memory accountant.
    fn memory(&self) -> &MemoryAccountant;

    /// Per-query records collected so far.
    fn records(&self) -> &[SolveRecord];
}

/// Cumulative stage totals an instrumented engine reports via
/// [`FeasibilityEngine::stage_totals`]: how query wall-time splits into
/// slicing, translation (term/clause building), and solving, plus how
/// often a slice closure was computed from scratch versus reused (from
/// the per-candidate union or the shared [`SliceCache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStages {
    /// Wall-time spent computing slice closures and constraints.
    pub slice_wall: Duration,
    /// Wall-time spent building terms/instances from the slice.
    pub translate_wall: Duration,
    /// Wall-time spent deciding satisfiability.
    pub solve_wall: Duration,
    /// Closures computed from scratch.
    pub slices_computed: u64,
    /// Closures served by per-candidate reuse or the shared memo.
    pub slices_reused: u64,
    /// Incremental solver sessions opened (0 for engines that solve
    /// cold). The multi-client bench uses this to show that queries from
    /// different checkers landing on the same sink share one session.
    pub sessions_opened: u64,
    /// Assembled queries the engine refuted by *seeded* known-bits
    /// preprocessing (abstract program facts attached via
    /// [`FeasibilityEngine::attach_absint`]) before opening a session or
    /// bit-blasting anything.
    pub absint_refutes: u64,
    /// E-classes built by equality-saturation simplification of local
    /// conditions, summed across passes.
    pub egraph_classes: u64,
    /// Rewrites (rule-driven e-class unions) applied by the e-graph.
    pub egraph_rewrites: u64,
    /// E-graph passes that reached saturation (a change-free iteration)
    /// within budget.
    pub egraph_saturated: u64,
    /// E-graph passes abandoned by the e-node/rebuild caps (the input
    /// term was used unchanged).
    pub egraph_cap_hits: u64,
    /// Term-DAG nodes removed by cost-based extraction (input minus
    /// extracted size, summed; the extracted-term delta).
    pub egraph_nodes_saved: u64,
}

impl EngineStages {
    /// Sums another engine's totals into this one.
    pub fn add(&mut self, other: &EngineStages) {
        self.slice_wall += other.slice_wall;
        self.translate_wall += other.translate_wall;
        self.solve_wall += other.solve_wall;
        self.slices_computed += other.slices_computed;
        self.slices_reused += other.slices_reused;
        self.sessions_opened += other.sessions_opened;
        self.absint_refutes += other.absint_refutes;
        self.egraph_classes += other.egraph_classes;
        self.egraph_rewrites += other.egraph_rewrites;
        self.egraph_saturated += other.egraph_saturated;
        self.egraph_cap_hits += other.egraph_cap_hits;
        self.egraph_nodes_saved += other.egraph_nodes_saved;
    }

    /// Deltas relative to an `earlier` snapshot of the same engine.
    pub fn since(&self, earlier: &EngineStages) -> EngineStages {
        EngineStages {
            slice_wall: self.slice_wall.saturating_sub(earlier.slice_wall),
            translate_wall: self.translate_wall.saturating_sub(earlier.translate_wall),
            solve_wall: self.solve_wall.saturating_sub(earlier.solve_wall),
            slices_computed: self.slices_computed - earlier.slices_computed,
            slices_reused: self.slices_reused - earlier.slices_reused,
            sessions_opened: self.sessions_opened - earlier.sessions_opened,
            absint_refutes: self.absint_refutes - earlier.absint_refutes,
            egraph_classes: self.egraph_classes - earlier.egraph_classes,
            egraph_rewrites: self.egraph_rewrites - earlier.egraph_rewrites,
            egraph_saturated: self.egraph_saturated - earlier.egraph_saturated,
            egraph_cap_hits: self.egraph_cap_hits - earlier.egraph_cap_hits,
            egraph_nodes_saved: self.egraph_nodes_saved - earlier.egraph_nodes_saved,
        }
    }

    /// Sums one e-graph pass's counters into the engine totals.
    pub fn absorb_egraph(&mut self, eg: &fusion_smt::egraph::EGraphStats) {
        self.egraph_classes += eg.classes;
        self.egraph_rewrites += eg.rewrites;
        self.egraph_saturated += eg.saturated;
        self.egraph_cap_hits += eg.cap_hits;
        self.egraph_nodes_saved += eg.nodes_saved();
    }
}

/// Per-stage wall/counter breakdown of one analysis run
/// (discover → slice → translate → solve), surfaced by the CLI's
/// `--stats`/`--json`. Engine stage walls are summed across workers in
/// parallel runs (CPU-time-like); `discover_wall` is the wall-clock
/// span of the discovery stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Wall-clock span of the discovery stage (sharded or not). In the
    /// streaming pipeline this overlaps the solve stage.
    pub discover_wall: Duration,
    /// Total DFS steps taken by discovery.
    pub discovery_steps: u64,
    /// Discovery shard (producer) count.
    pub discovery_shards: usize,
    /// Engine time computing slice closures/constraints (summed over
    /// workers).
    pub slice_wall: Duration,
    /// Engine time building terms/instances (summed over workers).
    pub translate_wall: Duration,
    /// Engine time deciding satisfiability (summed over workers).
    pub solve_wall: Duration,
    /// Slice closures computed from scratch.
    pub slices_computed: u64,
    /// Slice closures reused (per-candidate union or shared memo).
    pub slices_reused: u64,
    /// Incremental solver sessions opened across all workers.
    pub sessions_opened: u64,
    /// Candidates whose *every* path was refuted by abstract-interpretation
    /// triage: suppressed with zero cache, slice, or solver work.
    pub triaged_candidates: u64,
    /// Individual dependence paths refuted by abstract-interpretation
    /// triage before any cache lookup or engine query.
    pub triaged_paths: u64,
    /// Sink groups that issued no engine query because triage refuted
    /// paths in them — each is an incremental session the run never had to
    /// open.
    pub sessions_skipped: u64,
    /// Union slice closures never computed because the whole candidate was
    /// triaged away (one per fully-triaged candidate).
    pub slices_skipped: u64,
    /// Assembled queries the engines refuted by seeded known-bits
    /// preprocessing (solver-side absint seeding, distinct from the
    /// driver-side path triage above).
    pub absint_refutes: u64,
    /// Vertices removed by the compaction pass's frontier reachability
    /// pruning, summed per checker (zero when compaction is off).
    pub vertices_pruned: u64,
    /// Checker-taken PDG edges with a pruned endpoint, summed per checker.
    pub edges_pruned: u64,
    /// Single-entry/single-exit summary corridors collapsed into
    /// composite chains, summed per checker.
    pub chains_collapsed: u64,
    /// Solver queries answered by the compaction pass's isomorphic-
    /// fragment verdict memo instead of the engine (after an exact-key
    /// cache miss).
    pub iso_hits: u64,
    /// E-classes built by equality-saturation simplification of local
    /// conditions (zero when the e-graph leg is disabled).
    pub egraph_classes: u64,
    /// Rewrites (rule-driven e-class unions) applied by the e-graph.
    pub egraph_rewrites: u64,
    /// E-graph passes that saturated (reached a change-free iteration)
    /// within budget.
    pub egraph_saturated: u64,
    /// E-graph passes abandoned by the e-node/rebuild caps.
    pub egraph_cap_hits: u64,
    /// Term-DAG nodes removed by cost-based extraction (the
    /// extracted-term delta).
    pub egraph_nodes_saved: u64,
    /// Functions whose memoized absint facts a warm session run evicted
    /// (zero outside incremental re-analysis).
    pub facts_invalidated: u64,
    /// Slice closures a warm session run evicted because their function
    /// span intersected the edit's affected set.
    pub slices_invalidated: u64,
    /// Cached path verdicts a warm session run evicted via recorded
    /// `path_set_key → functions` provenance.
    pub verdicts_invalidated: u64,
    /// Candidates actually re-discovered and re-solved by a warm session
    /// run (retained work items replay without touching the engine).
    pub candidates_reanalyzed: u64,
    /// Call-graph shards a partitioned scan ran (zero for unsharded).
    pub shards: u64,
    /// Function summaries (absint facts + return summary) exported by
    /// shards for their owned functions.
    pub summaries_exported: u64,
    /// Function summaries imported by shards for closure functions they
    /// analyze but don't own — demand-driven, so across any one shard
    /// this stays below the total function count.
    pub summaries_imported: u64,
    /// Snapshot-container bytes written by a partitioned scan or a serve
    /// `save`.
    pub snapshot_bytes_written: u64,
    /// Snapshot-container bytes read (lazily, per section) by shard
    /// workers or a serve `load`.
    pub snapshot_bytes_read: u64,
}

impl StageStats {
    fn add_engine(&mut self, e: &EngineStages) {
        self.slice_wall += e.slice_wall;
        self.translate_wall += e.translate_wall;
        self.solve_wall += e.solve_wall;
        self.slices_computed += e.slices_computed;
        self.slices_reused += e.slices_reused;
        self.sessions_opened += e.sessions_opened;
        self.absint_refutes += e.absint_refutes;
        self.egraph_classes += e.egraph_classes;
        self.egraph_rewrites += e.egraph_rewrites;
        self.egraph_saturated += e.egraph_saturated;
        self.egraph_cap_hits += e.egraph_cap_hits;
        self.egraph_nodes_saved += e.egraph_nodes_saved;
    }
}

/// One reported bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The fact's origin.
    pub source: Vertex,
    /// The sink statement.
    pub sink: Vertex,
    /// The verdict that triggered the report ([`Feasibility::Feasible`] or,
    /// conservatively, [`Feasibility::Unknown`]).
    pub verdict: Feasibility,
    /// The witnessing (or undecided) path.
    pub path: DependencePath,
}

/// Aggregate results of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Engine name. Sequential runs use the engine's own name; parallel
    /// runs keep it and suffix the thread count (e.g. `"fusion×4"`).
    pub engine: String,
    /// Bug reports (feasible or undecided candidates).
    pub reports: Vec<BugReport>,
    /// Candidates whose every path was proven infeasible.
    pub suppressed: usize,
    /// Total candidates discovered by propagation.
    pub candidates: usize,
    /// Feasibility queries actually issued to an engine (cache hits are
    /// counted in [`AnalysisRun::cache`], not here).
    pub queries: usize,
    /// Wall-clock duration: propagation phase.
    pub propagate_time: Duration,
    /// Wall-clock duration: solving phase.
    pub solve_time: Duration,
    /// Peak tracked memory, bytes (all categories).
    pub peak_memory: u64,
    /// Verdict-cache traffic attributable to this run (all zeros when the
    /// run was uncached).
    pub cache: CacheStats,
    /// Slice-closure memo traffic attributable to this run (all zeros
    /// when no [`SliceCache`] was configured).
    pub slice: SliceCacheStats,
    /// Per-stage wall/counter breakdown (discover/slice/translate/solve).
    pub stages: StageStats,
}

impl AnalysisRun {
    /// Total wall-clock time. In the streaming pipeline `solve_time` is
    /// defined as `pipeline_wall − discovery span`, so this is the true
    /// end-to-end wall for every driver.
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.solve_time
    }
}

/// One checker's share of a fused multi-client run: its reports (in the
/// exact order a single-checker run would produce them) and its solve-side
/// tallies. Stage *walls* other than `solve_wall` are whole-run quantities
/// and live on [`MultiAnalysisRun::stages`]; everything here is
/// attributable per candidate (candidates carry their [`CheckerId`]).
#[derive(Debug, Clone)]
pub struct CheckerBreakdown {
    /// The client's bug class.
    pub kind: CheckKind,
    /// Bug reports for this checker, in canonical candidate order.
    pub reports: Vec<BugReport>,
    /// This checker's candidates whose every path was proven infeasible.
    pub suppressed: usize,
    /// Candidates discovered for this checker.
    pub candidates: usize,
    /// Feasibility queries issued to an engine for this checker's
    /// candidates (verdict-cache hits excluded).
    pub queries: usize,
    /// Verdict-cache hits while deciding this checker's candidates.
    pub cache_hits: u64,
    /// Verdict-cache misses while deciding this checker's candidates.
    pub cache_misses: u64,
    /// DFS steps the fused discovery spent on this checker's sources.
    pub discovery_steps: u64,
    /// Engine wall-time spent answering this checker's queries (summed
    /// over workers).
    pub solve_wall: Duration,
}

/// Aggregate results of one **fused multi-client run**: every checker in
/// the [`CheckerSet`] analyzed in a single pass over the shared PDG — one
/// discovery traversal, one set of sink groups (keyed on the sink function
/// only, so queries from different checkers share solver sessions and
/// slice closures), and **one true whole-scan memory peak** instead of a
/// max over per-checker passes.
#[derive(Debug, Clone)]
pub struct MultiAnalysisRun {
    /// Engine name (same convention as [`AnalysisRun::engine`]).
    pub engine: String,
    /// Per-checker breakdowns, in [`CheckerSet`] order.
    pub checkers: Vec<CheckerBreakdown>,
    /// Total candidates across all checkers.
    pub candidates: usize,
    /// Total engine queries across all checkers.
    pub queries: usize,
    /// Wall-clock duration: propagation phase (all checkers fused).
    pub propagate_time: Duration,
    /// Wall-clock duration: solving phase (all checkers fused).
    pub solve_time: Duration,
    /// Peak tracked memory of the whole fused scan, bytes.
    pub peak_memory: u64,
    /// Verdict-cache traffic attributable to this run.
    pub cache: CacheStats,
    /// Slice-memo traffic attributable to this run.
    pub slice: SliceCacheStats,
    /// Whole-run per-stage breakdown (checker-attributable counters are
    /// on the [`CheckerBreakdown`]s).
    pub stages: StageStats,
}

impl MultiAnalysisRun {
    /// Total wall-clock time (same semantics as
    /// [`AnalysisRun::total_time`]).
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.solve_time
    }

    /// All reports across checkers, in checker-major canonical order.
    pub fn all_reports(&self) -> impl Iterator<Item = &BugReport> {
        self.checkers.iter().flat_map(|b| b.reports.iter())
    }

    /// Flattens into a single-checker [`AnalysisRun`] — exact for the
    /// singleton sets the `analyze*` wrappers use; for larger sets the
    /// reports concatenate in checker order and `suppressed` sums.
    pub fn into_single(self) -> AnalysisRun {
        let mut reports = Vec::new();
        let mut suppressed = 0usize;
        for b in self.checkers {
            reports.extend(b.reports);
            suppressed += b.suppressed;
        }
        AnalysisRun {
            engine: self.engine,
            reports,
            suppressed,
            candidates: self.candidates,
            queries: self.queries,
            propagate_time: self.propagate_time,
            solve_time: self.solve_time,
            peak_memory: self.peak_memory,
            cache: self.cache,
            slice: self.slice,
            stages: self.stages,
        }
    }
}

/// Configuration of [`analyze`], [`analyze_parallel`], and
/// [`analyze_streaming`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Propagation limits.
    pub propagate: PropagateOptions,
    /// Whether the drivers memoize path verdicts in a [`VerdictCache`]
    /// (on by default). [`analyze`]/[`analyze_parallel`] allocate a
    /// run-local cache; use the `*_with_cache` variants to share one
    /// cache across runs or checkers.
    pub use_cache: bool,
    /// Shared slice-closure memo handed to engines that support it (the
    /// `FusionSolver`; baselines bypass it). `Some` by default with a
    /// run-local cache; pass a shared `Arc` to memoize closures across
    /// runs, checkers, and engines, or `None` to disable memoization
    /// entirely (engines still reuse one closure across the alternative
    /// paths of a single candidate).
    pub slice_cache: Option<Arc<SliceCache>>,
    /// Discovery shard count for the sharded drivers. `None` (default)
    /// uses the driver's thread count; the sequential driver always
    /// discovers on one shard.
    pub discover_shards: Option<usize>,
    /// Abstract-interpretation triage (on by default): per-function
    /// Const/Affine/Interval/KnownBits facts refute candidate paths before
    /// any cache lookup, slice closure, or solver session, and seed the
    /// engine's formula preprocessing. Triage may only *refute* — it never
    /// claims feasibility — so reports are byte-identical with it off (the
    /// CLI exposes `--no-absint`).
    pub absint: bool,
    /// Pre-discovery PDG compaction (on by default unless the
    /// `FUSION_NO_COMPACT` environment variable is set; the CLI exposes
    /// `--no-compact`): frontier reachability pruning, summary-chain
    /// collapse, and isomorphic-fragment verdict sharing. Reports are
    /// byte-identical with it off whenever the propagation step/path
    /// budgets do not bind (compaction only makes discovery cheaper, so a
    /// binding budget can cut the uncompacted walk earlier); discovery
    /// steps and solver queries only ever shrink.
    pub compact: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            propagate: PropagateOptions::default(),
            use_cache: true,
            slice_cache: Some(Arc::new(SliceCache::new())),
            discover_shards: None,
            absint: true,
            compact: std::env::var_os("FUSION_NO_COMPACT").is_none(),
        }
    }
}

impl AnalysisOptions {
    /// Default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Default options with verdict caching *and* slice memoization
    /// disabled — the fully conventional per-query configuration.
    pub fn without_cache() -> Self {
        Self {
            use_cache: false,
            slice_cache: None,
            ..Self::default()
        }
    }

    /// Replaces the slice-closure memo (e.g. with one shared across
    /// checkers or runs).
    pub fn with_slice_cache(mut self, cache: Arc<SliceCache>) -> Self {
        self.slice_cache = Some(cache);
        self
    }
}

/// The outcome for one candidate: either all paths were proven
/// infeasible (suppressed) or a report was produced. `Clone` so a warm
/// session run ([`analyze_multi_streaming_session`]) can replay recorded
/// outcomes of unaffected work items without re-solving them.
#[derive(Clone)]
pub(crate) enum CandVerdict {
    Suppressed,
    Report(BugReport),
}

/// Per-checker solve-side tallies a driver accumulates while deciding
/// candidates (each candidate carries its [`CheckerId`], so attribution
/// is exact even when workers interleave checkers).
#[derive(Debug, Clone, Copy, Default)]
struct CandTally {
    queries: usize,
    cache_hits: u64,
    cache_misses: u64,
    solve_wall: Duration,
    /// Paths refuted by abstract-interpretation triage (no cache lookup,
    /// no engine query).
    triaged_paths: u64,
    /// Candidates whose every path was triaged away (suppressed with zero
    /// solver-side work).
    triaged_candidates: u64,
    /// Union slice closures skipped because the whole candidate was
    /// triaged (one per fully-triaged candidate).
    slices_skipped: u64,
    /// Queries answered by the compaction pass's isomorphic-fragment
    /// verdict memo (no engine work, counted after an exact cache miss).
    iso_hits: u64,
}

impl CandTally {
    fn add(&mut self, other: &CandTally) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.solve_wall += other.solve_wall;
        self.triaged_paths += other.triaged_paths;
        self.triaged_candidates += other.triaged_candidates;
        self.slices_skipped += other.slices_skipped;
        self.iso_hits += other.iso_hits;
    }
}

/// `(total queries issued, total triaged paths)` across a tally set —
/// the group-boundary snapshot the drivers use to count sink groups whose
/// incremental session was never opened because triage refuted paths.
fn tally_totals(tallies: &[CandTally]) -> (usize, u64) {
    (
        tallies.iter().map(|t| t.queries).sum(),
        tallies.iter().map(|t| t.triaged_paths).sum(),
    )
}

/// Debug-build contract check at every fused-driver entry: the sparse
/// analyses, the PDG construction and the abstract interpreter all assume
/// the IR invariants of [`fusion_ir::validate::check_program`] (acyclic
/// gated SSA, consistent call-site table, unrolled call graph). Release
/// builds skip the walk; the CLI exposes the same check as `--validate`.
fn debug_validate(program: &Program) {
    #[cfg(debug_assertions)]
    {
        let errs = fusion_ir::validate::check_program(program);
        assert!(
            errs.is_empty(),
            "IR validation failed with {} diagnostic(s); first: {}",
            errs.len(),
            errs[0]
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = program;
}

/// Copies the summed triage counters of a run's tallies into its
/// [`StageStats`].
fn fill_triage_stats(stages: &mut StageStats, tallies: &[CandTally], sessions_skipped: u64) {
    stages.triaged_paths = tallies.iter().map(|t| t.triaged_paths).sum();
    stages.triaged_candidates = tallies.iter().map(|t| t.triaged_candidates).sum();
    stages.slices_skipped = tallies.iter().map(|t| t.slices_skipped).sum();
    stages.sessions_skipped = sessions_skipped;
    stages.iso_hits = tallies.iter().map(|t| t.iso_hits).sum();
}

/// Copies a compacted view's pruning counters into a run's
/// [`StageStats`] (no-op when compaction was off).
fn fill_compact_stats(stages: &mut StageStats, compact: Option<&CompactPdg>) {
    if let Some(c) = compact {
        let cs = c.stats();
        stages.vertices_pruned = cs.vertices_pruned;
        stages.edges_pruned = cs.edges_pruned;
        stages.chains_collapsed = cs.chains_collapsed;
    }
}

/// Groups candidate indices by **sink function only** — the slice-group
/// batching unit. Candidates against the same sink share most of their
/// slices, so solving them back-to-back maximizes what an incremental
/// engine can reuse (cached local conditions, memoized instantiations,
/// session encodings). The key deliberately ignores the candidate's
/// [`CheckerId`]: in a fused multi-client pass, queries from *different
/// checkers* that land on the same sink function fall into one group and
/// therefore share one solver session, one slice closure, and one warm
/// translation cache — the whole point of fusing the clients. Groups
/// appear in first-occurrence order and indices stay ascending within a
/// group, so a driver that walks the groups and sorts results by index
/// reproduces the ungrouped candidate order exactly.
fn group_by_sink(candidates: &[Candidate]) -> Vec<(u64, Vec<usize>)> {
    let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut slot: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        let key = c.sink.func.0 as u64;
        match slot.get(&key) {
            Some(&g) => order[g].1.push(i),
            None => {
                slot.insert(key, order.len());
                order.push((key, vec![i]));
            }
        }
    }
    order
}

/// Decides one candidate: query each alternative path until one is
/// feasible. With a cache, each path's verdict is looked up by canonical
/// key first and engine misses are stored back (Unknown is never stored).
/// `tally.queries` counts only queries actually issued to the engine;
/// hits/misses/solve-wall accumulate alongside so fused drivers can
/// attribute solve effort per checker.
///
/// When abstract facts are supplied, each path is first checked against
/// them ([`ProgramFacts::path_refuted`]): a refuted path is infeasible in
/// every execution, so it is skipped with zero cache or engine work, and a
/// candidate whose *every* path is refuted short-circuits to suppression
/// before [`FeasibilityEngine::begin_candidate`] — no session is touched
/// and no slice closure is ever computed for it. Triage may only refute,
/// never claim feasibility, so reports are byte-identical either way.
///
/// With a compacted view, a path whose exact key misses is additionally
/// looked up in the isomorphic-fragment memo ([`CompactPdg::iso_key`])
/// before the engine is queried: a hit replays the definite verdict of a
/// structurally identical path already decided (renaming of functions
/// and call sites cannot change satisfiability — no identity reaches the
/// solver), so the query is skipped entirely. Unknown verdicts are never
/// memoized, so budget-dependent outcomes never leak between fragments.
///
/// When a session provenance is supplied (warm analysis service), every
/// verdict-cache and iso-memo *insert* also records the inserted key's
/// on-path function span — the `path_set_key → functions` index the
/// dirtiness tracker later uses to evict exactly the entries an edit can
/// reach. The record holds function ids and content hashes only, never a
/// condition (§3.2.2).
#[allow(clippy::too_many_arguments)] // one call per driver; a params struct would only obscure
fn solve_candidate(
    program: &Program,
    pdg: &Pdg,
    engine: &mut dyn FeasibilityEngine,
    cache: Option<&VerdictCache>,
    facts: Option<&ProgramFacts>,
    compact: Option<&CompactPdg>,
    prov: Option<&crate::incremental::SessionProvenance>,
    kind: CheckKind,
    cand: &Candidate,
    tally: &mut CandTally,
) -> CandVerdict {
    // Abstract-interpretation triage: refute paths against per-function
    // facts before any cache lookup or solver work.
    let triaged: Vec<bool> = match facts {
        Some(f) => cand
            .paths
            .iter()
            .map(|p| f.path_refuted(program, p, kind))
            .collect(),
        None => vec![false; cand.paths.len()],
    };
    let refuted = triaged.iter().filter(|&&t| t).count();
    tally.triaged_paths += refuted as u64;
    if refuted == cand.paths.len() {
        tally.triaged_candidates += 1;
        tally.slices_skipped += 1;
        return CandVerdict::Suppressed;
    }
    // Announce the candidate so the engine can compute the backward
    // closure once for the union of the alternative paths (lazily — a
    // candidate fully answered by the verdict cache never slices). The
    // full path set is announced even when some paths were triaged: the
    // union closure of a superset is sound for every subset, and keeping
    // the canonical key independent of triage keeps the slice memo shared
    // between triaged and untriaged runs.
    let cand_key = path_set_key(program, &cand.paths);
    engine.begin_candidate(program, pdg, cand_key, &cand.paths);
    let mut verdict = Feasibility::Infeasible;
    let mut witness: Option<&DependencePath> = None;
    for (path, &is_triaged) in cand.paths.iter().zip(&triaged) {
        if is_triaged {
            continue;
        }
        let slice = std::slice::from_ref(path);
        let feasibility = match cache {
            Some(c) => {
                let key = VerdictCache::key(program, slice);
                match c.get(key) {
                    Some(v) => {
                        tally.cache_hits += 1;
                        v
                    }
                    None => {
                        tally.cache_misses += 1;
                        let v = query_with_iso(program, pdg, engine, compact, prov, slice, tally);
                        c.insert(key, v);
                        if let Some(p) = prov {
                            p.verdicts.record(key, slice);
                        }
                        v
                    }
                }
            }
            None => query_with_iso(program, pdg, engine, compact, prov, slice, tally),
        };
        match feasibility {
            Feasibility::Feasible => {
                verdict = Feasibility::Feasible;
                witness = Some(path);
                break;
            }
            Feasibility::Unknown => {
                verdict = Feasibility::Unknown;
                witness.get_or_insert(path);
            }
            Feasibility::Infeasible => {}
        }
    }
    match verdict {
        Feasibility::Infeasible => CandVerdict::Suppressed,
        v => CandVerdict::Report(BugReport {
            source: cand.source,
            sink: cand.sink,
            verdict: v,
            path: witness.expect("non-infeasible verdict has a path").clone(),
        }),
    }
}

/// Decides one path's feasibility, consulting the compacted view's
/// isomorphic-fragment memo before the engine (see [`solve_candidate`]).
fn query_with_iso(
    program: &Program,
    pdg: &Pdg,
    engine: &mut dyn FeasibilityEngine,
    compact: Option<&CompactPdg>,
    prov: Option<&crate::incremental::SessionProvenance>,
    slice: &[DependencePath],
    tally: &mut CandTally,
) -> Feasibility {
    let iso = compact.map(|cp| (cp.iso(), cp.iso_key(slice)));
    if let Some(v) = iso.as_ref().and_then(|(memo, key)| memo.get(*key)) {
        tally.iso_hits += 1;
        return v;
    }
    tally.queries += 1;
    let o = engine.check_paths(program, pdg, slice);
    tally.solve_wall += o.duration;
    if let Some((memo, key)) = iso {
        memo.insert(key, o.feasibility);
        if let Some(p) = prov {
            p.iso.record(key, slice);
        }
    }
    o.feasibility
}

/// Splits the canonical `(checker, verdict)` sequence of a fused run
/// into per-checker breakdowns. Because the fused candidate order is
/// checker-major (`(checker_idx, source_idx)`), each checker's report
/// subsequence is exactly what a single-checker run produces.
fn assemble_breakdowns(
    set: &CheckerSet,
    ordered: Vec<(CheckerId, CandVerdict)>,
    tallies: &[CandTally],
    per_checker_steps: &[u64],
) -> Vec<CheckerBreakdown> {
    let mut out: Vec<CheckerBreakdown> = set
        .iter()
        .map(|(id, c)| CheckerBreakdown {
            kind: c.kind,
            reports: Vec::new(),
            suppressed: 0,
            candidates: 0,
            queries: tallies[id.0].queries,
            cache_hits: tallies[id.0].cache_hits,
            cache_misses: tallies[id.0].cache_misses,
            discovery_steps: per_checker_steps.get(id.0).copied().unwrap_or(0),
            solve_wall: tallies[id.0].solve_wall,
        })
        .collect();
    for (id, v) in ordered {
        let b = &mut out[id.0];
        b.candidates += 1;
        match v {
            CandVerdict::Suppressed => b.suppressed += 1,
            CandVerdict::Report(r) => b.reports.push(r),
        }
    }
    out
}

/// Runs one checker over a program with the given feasibility engine.
///
/// A candidate is reported when *any* of its alternative paths is feasible;
/// it is suppressed only when every path is proven infeasible; undecided
/// candidates are reported conservatively (matching how bug detectors treat
/// solver timeouts).
pub fn analyze(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_with_cache(program, pdg, checker, engine, options, cache)
}

/// [`analyze`] with an explicit, possibly shared, verdict cache (`None`
/// disables caching regardless of [`AnalysisOptions::use_cache`]). The
/// returned [`AnalysisRun::cache`] counters are scoped to this run even
/// when the cache is shared.
///
/// A thin wrapper over the fused path ([`analyze_multi_with_cache`])
/// with a singleton [`CheckerSet`].
pub fn analyze_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let set = CheckerSet::single(checker.clone());
    analyze_multi_with_cache(program, pdg, &set, engine, options, cache).into_single()
}

/// Runs a whole [`CheckerSet`] over a program in **one fused pass** with
/// one engine (sequential). Allocates a run-local verdict cache per
/// [`AnalysisOptions::use_cache`]; use [`analyze_multi_with_cache`] to
/// share one.
pub fn analyze_multi(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
) -> MultiAnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_multi_with_cache(program, pdg, set, engine, options, cache)
}

/// The fused sequential driver: one discovery traversal over every
/// `(checker, source)` work item, one pass of sink groups over the
/// engine. Sink groups are keyed on the sink function only, so
/// candidates from different checkers landing on the same sink share the
/// engine's group-scoped state (sessions, instance memos) and the slice
/// memo — instead of each checker paying its own cold pass.
pub fn analyze_multi_with_cache(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> MultiAnalysisRun {
    debug_validate(program);
    if let Some(sc) = &options.slice_cache {
        engine.attach_slice_cache(Arc::clone(sc));
    }
    // Abstract facts, computed once per run (memoized per function inside)
    // and shared by driver-side triage and engine-side seeding.
    let facts = options
        .absint
        .then(|| Arc::new(ProgramFacts::compute(program)));
    if let Some(f) = &facts {
        engine.attach_absint(Arc::clone(f));
    }
    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let stages_before = engine.stage_totals();
    let t0 = Instant::now();
    // The compaction pass runs inside the discovery span: its build cost
    // is part of what the discover wall attributes.
    let compact = options
        .compact
        .then(|| CompactPdg::build(program, pdg, set, &options.propagate));
    let discovery =
        discover_all_multi_compact(program, pdg, set, &options.propagate, 1, compact.as_ref());
    let candidates = discovery.candidates;
    let propagate_time = t0.elapsed();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    // Slice-group batching: candidates sharing a sink function — from
    // *any* checker — are solved back-to-back, so an incremental engine
    // sees maximally related queries in a row. Results are re-sorted by
    // candidate index, so grouping never changes the report order.
    let mut tallies = vec![CandTally::default(); set.len()];
    let groups = group_by_sink(&candidates);
    let t1 = Instant::now();
    let mut results: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    let mut sessions_skipped = 0u64;
    for (key, idxs) in &groups {
        engine.begin_group(*key);
        let (q_before, tr_before) = tally_totals(&tallies);
        for &idx in idxs {
            let cand = &candidates[idx];
            let v = solve_candidate(
                program,
                pdg,
                engine,
                cache,
                facts.as_deref(),
                compact.as_ref(),
                None,
                set.get(cand.checker).kind,
                cand,
                &mut tallies[cand.checker.0],
            );
            results.push((idx, v));
        }
        let (q_after, tr_after) = tally_totals(&tallies);
        if q_after == q_before && tr_after > tr_before {
            sessions_skipped += 1;
        }
    }
    results.sort_by_key(|(idx, _)| *idx);
    let solve_time = t1.elapsed();

    // The graph (and the caches, if any) is retained for the whole run,
    // for every engine: one accounting path shared with the parallel
    // drivers. Discovery's transient visited-set bytes ride along as a
    // concurrent accountant, exactly as in the sharded drivers. Because
    // the whole checker set runs in one pass, this is the true
    // whole-scan peak — not a max over per-checker passes.
    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(
        std::iter::once(engine.memory()).chain(discovery.memory.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discovery.steps,
        discovery_shards: discovery.shards,
        ..StageStats::default()
    };
    stages.add_engine(&engine.stage_totals().since(&stages_before));
    fill_triage_stats(&mut stages, &tallies, sessions_skipped);
    fill_compact_stats(&mut stages, compact.as_ref());

    let ordered: Vec<(CheckerId, CandVerdict)> = results
        .into_iter()
        .map(|(idx, v)| (candidates[idx].checker, v))
        .collect();
    let queries = tallies.iter().map(|t| t.queries).sum();
    let checkers = assemble_breakdowns(set, ordered, &tallies, &discovery.per_checker_steps);

    MultiAnalysisRun {
        engine: engine.name().to_string(),
        checkers,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

/// Runs one checker with per-thread engines, fanning candidates out over
/// `threads` worker threads (the paper's evaluation used fifteen). Each
/// worker owns an engine built by `factory`, so no locking is needed on
/// solver state.
///
/// Work distribution is a **work-stealing queue over slice groups**:
/// candidates are batched by sink function ([`FeasibilityEngine::begin_group`])
/// and an atomic cursor hands whole groups to workers, so a worker stuck
/// behind one slow candidate no longer idles the rest of its stride while
/// related queries still land on the same engine back-to-back (which is
/// what makes incremental sessions pay off). Workers share one
/// [`VerdictCache`] (unless disabled via [`AnalysisOptions::use_cache`]),
/// and results are merged back in candidate order, so the report list is
/// byte-identical to the sequential driver's regardless of thread count
/// or steal order.
pub fn analyze_parallel(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_parallel_with_cache(program, pdg, checker, factory, threads, options, cache)
}

/// [`analyze_parallel`] with an explicit, possibly shared, verdict cache
/// (`None` disables caching regardless of [`AnalysisOptions::use_cache`]).
///
/// A thin wrapper over the fused path
/// ([`analyze_multi_parallel_with_cache`]) with a singleton
/// [`CheckerSet`].
pub fn analyze_parallel_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let set = CheckerSet::single(checker.clone());
    analyze_multi_parallel_with_cache(program, pdg, &set, factory, threads, options, cache)
        .into_single()
}

/// Runs a whole [`CheckerSet`] in one fused barrier-parallel pass.
/// Allocates a run-local verdict cache per
/// [`AnalysisOptions::use_cache`]; use
/// [`analyze_multi_parallel_with_cache`] to share one.
pub fn analyze_multi_parallel(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> MultiAnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_multi_parallel_with_cache(program, pdg, set, factory, threads, options, cache)
}

/// The fused barrier-parallel driver: one sharded discovery over every
/// `(checker, source)` work item, then work-stealing over sink groups
/// that mix candidates from all checkers (the group key is the sink
/// function only). Workers share one [`VerdictCache`] and one
/// [`SliceCache`] across the whole set; results merge back in canonical
/// candidate order, so per-checker reports are byte-identical to the
/// sequential fused driver's — and to per-checker single runs —
/// regardless of thread count or steal order.
pub fn analyze_multi_parallel_with_cache(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> MultiAnalysisRun {
    debug_validate(program);
    let threads = threads.max(1);
    let facts = options
        .absint
        .then(|| Arc::new(ProgramFacts::compute(program)));
    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let t0 = Instant::now();
    // Sharded discovery: the barrier driver still waits for the full
    // candidate list (use `analyze_multi_streaming_with_cache` to
    // overlap), but the discovery itself fans out across the same thread
    // count, merged deterministically by work-item index.
    let shards = options.discover_shards.unwrap_or(threads);
    let compact = options
        .compact
        .then(|| CompactPdg::build(program, pdg, set, &options.propagate));
    let discovery = discover_all_multi_compact(
        program,
        pdg,
        set,
        &options.propagate,
        shards,
        compact.as_ref(),
    );
    let candidates = discovery.candidates;
    let propagate_time = t0.elapsed();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    struct WorkerOut {
        /// The factory-built engine's name (same for every worker).
        name: &'static str,
        /// `(candidate index, outcome)` pairs, in steal order.
        results: Vec<(usize, CandVerdict)>,
        /// Per-checker tallies (indexed by `CheckerId.0`).
        tallies: Vec<CandTally>,
        memory: MemoryAccountant,
        stages: EngineStages,
        /// Sink groups this worker never issued a query for because triage
        /// refuted paths in them.
        sessions_skipped: u64,
    }

    // Work-stealing cursor over slice groups: workers atomically grab one
    // group at a time. Group granularity keeps related queries on one
    // engine (the point of the batching) while `fetch_add` keeps the grab
    // wait-free and the tail balanced.
    let groups = group_by_sink(&candidates);
    let cursor = AtomicUsize::new(0);

    let t1 = Instant::now();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cands = &candidates;
            let groups = &groups;
            let cursor = &cursor;
            let slice_cache = options.slice_cache.clone();
            let facts = facts.clone();
            let compact = compact.as_ref();
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                if let Some(sc) = slice_cache {
                    engine.attach_slice_cache(sc);
                }
                if let Some(f) = &facts {
                    engine.attach_absint(Arc::clone(f));
                }
                let mut out = WorkerOut {
                    name: engine.name(),
                    results: Vec::new(),
                    tallies: vec![CandTally::default(); set.len()],
                    memory: MemoryAccountant::new(),
                    stages: EngineStages::default(),
                    sessions_skipped: 0,
                };
                loop {
                    let g = cursor.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    let (key, idxs) = &groups[g];
                    engine.begin_group(*key);
                    let (q_before, tr_before) = tally_totals(&out.tallies);
                    for &idx in idxs {
                        let cand = &cands[idx];
                        let v = solve_candidate(
                            program,
                            pdg,
                            engine.as_mut(),
                            cache,
                            facts.as_deref(),
                            compact,
                            None,
                            set.get(cand.checker).kind,
                            cand,
                            &mut out.tallies[cand.checker.0],
                        );
                        out.results.push((idx, v));
                    }
                    let (q_after, tr_after) = tally_totals(&out.tallies);
                    if q_after == q_before && tr_after > tr_before {
                        out.sessions_skipped += 1;
                    }
                }
                out.memory = engine.memory().clone();
                out.stages = engine.stage_totals();
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    let solve_time = t1.elapsed();

    // Merge in candidate order: the exact order the sequential driver
    // would have produced, independent of which worker stole what.
    let mut merged: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    let mut tallies = vec![CandTally::default(); set.len()];
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("parallel");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discovery.steps,
        discovery_shards: discovery.shards,
        ..StageStats::default()
    };
    let mut sessions_skipped = 0u64;
    for o in outputs {
        for (t, wt) in tallies.iter_mut().zip(&o.tallies) {
            t.add(wt);
        }
        memories.push(o.memory);
        stages.add_engine(&o.stages);
        sessions_skipped += o.sessions_skipped;
        merged.extend(o.results);
    }
    merged.sort_by_key(|(idx, _)| *idx);
    fill_triage_stats(&mut stages, &tallies, sessions_skipped);
    fill_compact_stats(&mut stages, compact.as_ref());

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(
        memories.iter().chain(discovery.memory.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();

    let ordered: Vec<(CheckerId, CandVerdict)> = merged
        .into_iter()
        .map(|(idx, v)| (candidates[idx].checker, v))
        .collect();
    let queries = tallies.iter().map(|t| t.queries).sum();
    let checkers = assemble_breakdowns(set, ordered, &tallies, &discovery.per_checker_steps);

    MultiAnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        checkers,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

/// Runs one checker through the **streaming discovery→solve pipeline**:
/// discovery shards push completed sink groups through a bounded channel
/// into group-stealing solve workers, so solving overlaps discovery
/// wall-time instead of waiting behind the barrier of
/// [`analyze_parallel`]. Reports are merged by `(source, candidate)`
/// index and are **byte-identical** to the sequential driver's at any
/// thread count. Allocates a run-local verdict cache per
/// [`AnalysisOptions::use_cache`]; use
/// [`analyze_streaming_with_cache`] to share one.
pub fn analyze_streaming(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_streaming_with_cache(program, pdg, checker, factory, threads, options, cache)
}

/// [`analyze_streaming`] with an explicit, possibly shared, verdict
/// cache (`None` disables caching regardless of
/// [`AnalysisOptions::use_cache`]).
///
/// Timing semantics: `propagate_time` is the wall-clock span until the
/// last discovery shard finished; `solve_time` is the *rest* of the
/// pipeline wall, so [`AnalysisRun::total_time`] equals the true
/// end-to-end wall (overlap is visible as `propagate_time +
/// solve_time < barrier driver's sum`).
///
/// With one thread there is nothing to overlap: the call delegates to
/// the sequential driver (same discovery, same accounting), so
/// 1-thread streaming peaks equal the sequential driver's exactly.
pub fn analyze_streaming_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let set = CheckerSet::single(checker.clone());
    analyze_multi_streaming_with_cache(program, pdg, &set, factory, threads, options, cache)
        .into_single()
}

/// Runs a whole [`CheckerSet`] through one fused streaming pipeline.
/// Allocates a run-local verdict cache per
/// [`AnalysisOptions::use_cache`]; use
/// [`analyze_multi_streaming_with_cache`] to share one.
pub fn analyze_multi_streaming(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> MultiAnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_multi_streaming_with_cache(program, pdg, set, factory, threads, options, cache)
}

/// The fused streaming driver: producers steal `(checker, source)` work
/// items and stream completed sink groups — keyed and **routed by the
/// sink function only** — into sticky solve workers. A sink function
/// targeted by several checkers therefore lands on one worker, whose
/// engine keeps one warm session and one warm instance memo across all
/// clients of that sink. Reports merge by `(work-item, candidate)` index
/// and are byte-identical to the fused sequential driver's at any thread
/// count.
pub fn analyze_multi_streaming_with_cache(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> MultiAnalysisRun {
    debug_validate(program);
    let threads = threads.max(1);
    if threads == 1 {
        let mut engine = factory();
        let mut run = analyze_multi_with_cache(program, pdg, set, engine.as_mut(), options, cache);
        run.engine = format!("{}×1", run.engine);
        return run;
    }

    /// One unit of streamed work: the candidates of one (work item, sink
    /// function) group, tagged for the deterministic merge.
    struct StreamGroup {
        item_idx: usize,
        sink_key: u64,
        /// `(candidate index within the work item, candidate)`.
        cands: Vec<(usize, Candidate)>,
    }

    struct WorkerOut {
        name: &'static str,
        /// `((work-item index, local candidate index), outcome)` pairs.
        results: Vec<((usize, usize), CandVerdict)>,
        /// Per-checker tallies (indexed by `CheckerId.0`).
        tallies: Vec<CandTally>,
        memory: MemoryAccountant,
        stages: EngineStages,
        /// Streamed groups this worker never issued a query for because
        /// triage refuted paths in them.
        sessions_skipped: u64,
    }

    let facts = options
        .absint
        .then(|| Arc::new(ProgramFacts::compute(program)));
    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    let items = multi_source_vertices(program, set);
    let producers = options
        .discover_shards
        .unwrap_or(threads)
        .clamp(1, items.len().max(1));
    // One bounded queue per solve worker, with groups routed by
    // `sink_key % threads`. Sticky routing sends every group of one sink
    // function to the same worker, so the engine's group-scoped state
    // (the incremental session, instance memo) amortizes across the many
    // per-source groups a sink function fragments into under streaming —
    // matching the barrier driver's one-global-group-per-sink behavior.
    // The parallelism granularity is unchanged: the barrier driver also
    // hands a sink function's whole group to a single worker.
    let queues: Vec<BoundedQueue<StreamGroup>> = (0..threads)
        .map(|_| BoundedQueue::new(2, producers))
        .collect();
    let item_cursor = AtomicUsize::new(0);
    let producers_left = AtomicUsize::new(producers);
    let discover_span: Mutex<Duration> = Mutex::new(Duration::ZERO);
    let discover_steps = std::sync::atomic::AtomicU64::new(0);
    let per_checker_steps: Mutex<Vec<u64>> = Mutex::new(vec![0u64; set.len()]);
    let candidates_total = AtomicUsize::new(0);
    let discovery_accts: Mutex<Vec<MemoryAccountant>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    // The compaction pass runs once, up front, inside the discovery span;
    // producers and solve workers share it by reference.
    let compact = options
        .compact
        .then(|| CompactPdg::build(program, pdg, set, &options.propagate));
    let compact = compact.as_ref();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        // Discovery shards (producers): steal (checker, source) work
        // items, group each item's candidates by sink function, stream
        // the groups out.
        for _ in 0..producers {
            let queues = &queues;
            let item_cursor = &item_cursor;
            let producers_left = &producers_left;
            let discover_span = &discover_span;
            let discover_steps = &discover_steps;
            let per_checker_steps = &per_checker_steps;
            let candidates_total = &candidates_total;
            let discovery_accts = &discovery_accts;
            let items = &items;
            scope.spawn(move || {
                let mut acct = MemoryAccountant::new();
                let mut local_steps = vec![0u64; set.len()];
                // Flipped when a send is refused: some consumer's queue
                // closed (it panicked), so the pipeline cannot complete —
                // stop discovering, but still run the shutdown protocol
                // below so every queue learns this producer is done.
                let mut consumers_live = true;
                while consumers_live {
                    let i = item_cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let (id, src) = items[i];
                    let d = discover_source_for_compact(
                        program,
                        pdg,
                        set.get(id),
                        id,
                        &options.propagate,
                        src,
                        compact,
                    );
                    acct.charge(Category::Graph, d.state_bytes);
                    acct.release(Category::Graph, d.state_bytes);
                    discover_steps.fetch_add(d.steps, Ordering::Relaxed);
                    local_steps[id.0] += d.steps;
                    candidates_total.fetch_add(d.candidates.len(), Ordering::Relaxed);
                    // Group by sink function within the work item
                    // (first-occurrence order), preserving local indices
                    // for the merge.
                    let mut order: Vec<StreamGroup> = Vec::new();
                    let mut slot: std::collections::HashMap<u64, usize> =
                        std::collections::HashMap::new();
                    for (local, cand) in d.candidates.into_iter().enumerate() {
                        let key = cand.sink.func.0 as u64;
                        match slot.get(&key) {
                            Some(&g) => order[g].cands.push((local, cand)),
                            None => {
                                slot.insert(key, order.len());
                                order.push(StreamGroup {
                                    item_idx: i,
                                    sink_key: key,
                                    cands: vec![(local, cand)],
                                });
                            }
                        }
                    }
                    for group in order {
                        let worker = (group.sink_key as usize) % queues.len();
                        if !queues[worker].send(group) {
                            consumers_live = false;
                            break;
                        }
                    }
                }
                // The discovery stage's wall span ends when the *last*
                // shard finishes.
                if producers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
                    *discover_span.lock().expect("span lock") = t0.elapsed();
                }
                for queue in queues {
                    queue.producer_done();
                }
                let mut shared = per_checker_steps.lock().expect("steps lock");
                for (s, l) in shared.iter_mut().zip(&local_steps) {
                    *s += l;
                }
                drop(shared);
                discovery_accts.lock().expect("acct lock").push(acct);
            });
        }
        // Solve workers (consumers), each draining its own sticky queue.
        let mut handles = Vec::new();
        for queue in queues.iter().take(threads) {
            let slice_cache = options.slice_cache.clone();
            let facts = facts.clone();
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                if let Some(sc) = slice_cache {
                    engine.attach_slice_cache(sc);
                }
                if let Some(f) = &facts {
                    engine.attach_absint(Arc::clone(f));
                }
                let mut out = WorkerOut {
                    name: engine.name(),
                    results: Vec::new(),
                    tallies: vec![CandTally::default(); set.len()],
                    memory: MemoryAccountant::new(),
                    stages: EngineStages::default(),
                    sessions_skipped: 0,
                };
                // Streamed groups fragment one sink function across many
                // work items — including items of *different checkers*
                // that share the sink; a group boundary is only announced
                // when the sink key actually changes, so the engine's
                // group-scoped state spans the fragments (and the
                // checkers) exactly as it spans the barrier driver's
                // single global group. (Verdicts never depend on where
                // boundaries fall — `begin_group`'s contract — so this is
                // purely a time/space trade.)
                // Liveness: if this worker dies mid-solve (a panicking
                // engine), the guard closes its queue on unwind, so
                // producers parked on the bounded `not_full` condvar wake
                // up, observe the refusal, and wind down — the panic then
                // propagates through the scope join instead of
                // deadlocking it. Harmless on orderly exit: the queue is
                // already drained when the guard fires.
                let _close_guard = CloseGuard::new(queue);
                let mut last_key: Option<u64> = None;
                while let Some(group) = queue.recv() {
                    if last_key != Some(group.sink_key) {
                        engine.begin_group(group.sink_key);
                        last_key = Some(group.sink_key);
                    }
                    let (q_before, tr_before) = tally_totals(&out.tallies);
                    for (local_idx, cand) in &group.cands {
                        let checker_idx = cand.checker.0;
                        let v = solve_candidate(
                            program,
                            pdg,
                            engine.as_mut(),
                            cache,
                            facts.as_deref(),
                            compact,
                            None,
                            set.get(cand.checker).kind,
                            cand,
                            &mut out.tallies[checker_idx],
                        );
                        out.results.push(((group.item_idx, *local_idx), v));
                    }
                    let (q_after, tr_after) = tally_totals(&out.tallies);
                    if q_after == q_before && tr_after > tr_before {
                        out.sessions_skipped += 1;
                    }
                }
                out.memory = engine.memory().clone();
                out.stages = engine.stage_totals();
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("solve worker"))
            .collect()
    });
    let pipeline_wall = t0.elapsed();
    let propagate_time = *discover_span.lock().expect("span lock");
    let solve_time = pipeline_wall.saturating_sub(propagate_time);

    // Deterministic merge: (work-item index, candidate index within the
    // item) reproduces the fused sequential discovery order exactly —
    // checker-major, since the work list is `(checker_idx, source_idx)`
    // ordered.
    let mut merged: Vec<((usize, usize), CandVerdict)> = Vec::new();
    let mut tallies = vec![CandTally::default(); set.len()];
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("streaming");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    let mut stages = StageStats {
        discover_wall: propagate_time,
        discovery_steps: discover_steps.load(Ordering::Relaxed),
        discovery_shards: producers,
        ..StageStats::default()
    };
    let mut sessions_skipped = 0u64;
    for o in outputs {
        for (t, wt) in tallies.iter_mut().zip(&o.tallies) {
            t.add(wt);
        }
        memories.push(o.memory);
        stages.add_engine(&o.stages);
        sessions_skipped += o.sessions_skipped;
        merged.extend(o.results);
    }
    merged.sort_by_key(|(key, _)| *key);
    fill_triage_stats(&mut stages, &tallies, sessions_skipped);
    fill_compact_stats(&mut stages, compact);

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let discovery_accts = discovery_accts.into_inner().expect("acct lock");
    let mem = run_accounting(
        memories.iter().chain(discovery_accts.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();

    let ordered: Vec<(CheckerId, CandVerdict)> = merged
        .into_iter()
        .map(|((item_idx, _), v)| (items[item_idx].0, v))
        .collect();
    let queries = tallies.iter().map(|t| t.queries).sum();
    let per_checker_steps = per_checker_steps.into_inner().expect("steps lock");
    let checkers = assemble_breakdowns(set, ordered, &tallies, &per_checker_steps);

    MultiAnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        checkers,
        candidates: candidates_total.load(Ordering::Relaxed),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    }
}

/// Recorded outcomes of one session run, keyed by `(checker, source)`
/// work item: the canonical per-candidate verdicts and the discovery
/// steps the item took. A later warm run replays the record of every
/// work item the edit cannot reach — byte-identically, because a work
/// item whose call-graph component contains no edited function discovers
/// the same candidates and receives the same verdicts as a cold run of
/// the edited program (dependence paths, slice closures, and compaction
/// liveness never leave the component). Only outcomes are recorded —
/// never a path condition (§3.2.2).
#[derive(Default)]
pub struct ItemOutcomes {
    map: std::collections::HashMap<(usize, Vertex), ItemRecord>,
}

#[derive(Clone)]
pub(crate) struct ItemRecord {
    pub(crate) verdicts: Vec<CandVerdict>,
    pub(crate) steps: u64,
}

impl ItemOutcomes {
    pub(crate) fn get(&self, id: CheckerId, src: Vertex) -> Option<&ItemRecord> {
        self.map.get(&(id.0, src))
    }

    /// Number of recorded `(checker, source)` work items.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no work item has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates the recorded items (snapshot serialization sorts them
    /// before writing, so map order never leaks into bytes).
    pub(crate) fn records(&self) -> impl Iterator<Item = (&(usize, Vertex), &ItemRecord)> {
        self.map.iter()
    }

    /// Inserts (or overwrites) one recorded item. Used by the snapshot
    /// reader and the shard merge, which combine per-shard outcome sets
    /// into one replayable whole.
    pub(crate) fn insert_record(&mut self, key: (usize, Vertex), rec: ItemRecord) {
        self.map.insert(key, rec);
    }
}

/// Resident-state inputs of [`analyze_multi_streaming_session`]. A cold
/// scan passes empty fields (no retained outcomes, no affected mask, so
/// every work item runs live); a warm rescan passes the session's
/// resident facts, compacted view, recorded outcomes, the edit's
/// affected-function mask, and the provenance recorder.
#[derive(Default)]
pub struct SessionParams<'a> {
    /// Precomputed abstract facts (`None` = absint off for this run).
    /// The session driver never computes facts itself — the resident
    /// session owns them and recomputes only dirty functions.
    pub facts: Option<Arc<ProgramFacts>>,
    /// Resident compacted view (`None` = compaction off).
    pub compact: Option<&'a CompactPdg>,
    /// Outcomes recorded by the previous session run.
    pub retained: Option<&'a ItemOutcomes>,
    /// Per-function "the edit can reach this" mask — the connected
    /// component of the edited functions over the symmetric
    /// caller∪callee adjacency (of the old and new programs). A work
    /// item whose source function is unaffected replays its retained
    /// record instead of re-running discovery and solving.
    pub affected: Option<&'a [bool]>,
    /// Provenance recorder for verdict/iso-memo inserts (the
    /// `path_set_key → functions` index the next edit's invalidation
    /// uses).
    pub prov: Option<&'a crate::incremental::SessionProvenance>,
}

/// The session driver behind the warm analysis service: the fused
/// streaming pipeline of [`analyze_multi_streaming_with_cache`], run
/// over only the **live** `(checker, source)` work items — those the
/// edit's affected set can reach, or that have no retained record —
/// while every other item replays its recorded outcome. Returns the run
/// plus the refreshed [`ItemOutcomes`] for the next rescan.
///
/// Reports are byte-identical to a cold batch scan of the same program
/// at any thread count: live items go through the exact cold machinery
/// (same discovery, same solve path, same caches), and replayed items
/// are sound because an unaffected component is untouched by the edit.
/// Counters differ by design — that is the point: replayed items
/// contribute their recorded candidates and discovery steps, but zero
/// queries, cache traffic, and engine wall.
#[allow(clippy::too_many_arguments)] // mirrors the other drivers' signatures plus session state
pub fn analyze_multi_streaming_session(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
    params: SessionParams<'_>,
) -> (MultiAnalysisRun, ItemOutcomes) {
    debug_validate(program);
    let threads = threads.max(1);
    let facts = params.facts;
    let compact = params.compact;
    let prov = params.prov;
    let items = multi_source_vertices(program, set);

    // Partition the work list: an item replays iff its source function is
    // provably unaffected by the edit *and* a retained record exists.
    // Out-of-range functions (the program grew) count as affected.
    let replay: Vec<Option<ItemRecord>> = items
        .iter()
        .map(|(id, src)| {
            let unaffected = params
                .affected
                .is_some_and(|a| !a.get(src.func.index()).copied().unwrap_or(true));
            if unaffected {
                params.retained.and_then(|r| r.get(*id, *src)).cloned()
            } else {
                None
            }
        })
        .collect();
    let live: Vec<usize> = (0..items.len()).filter(|&i| replay[i].is_none()).collect();

    let slice_before = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    /// One unit of streamed work (same shape as the cold streaming
    /// driver's), tagged with the *original* work-item index.
    struct StreamGroup {
        item_idx: usize,
        sink_key: u64,
        cands: Vec<(usize, Candidate)>,
    }

    struct WorkerOut {
        name: &'static str,
        results: Vec<((usize, usize), CandVerdict)>,
        tallies: Vec<CandTally>,
        memory: MemoryAccountant,
        stages: EngineStages,
        sessions_skipped: u64,
    }

    let item_steps: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
    let discovery_accts: Mutex<Vec<MemoryAccountant>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    let (outputs, propagate_time, shards): (Vec<WorkerOut>, Duration, usize) = if threads == 1 {
        // Inline sequential path: one engine, live items in work-item
        // order, per-item sink grouping (identical reports to the global
        // grouping — verdicts never depend on group boundaries).
        let mut engine = factory();
        if let Some(sc) = &options.slice_cache {
            engine.attach_slice_cache(Arc::clone(sc));
        }
        if let Some(f) = &facts {
            engine.attach_absint(Arc::clone(f));
        }
        let mut out = WorkerOut {
            name: engine.name(),
            results: Vec::new(),
            tallies: vec![CandTally::default(); set.len()],
            memory: MemoryAccountant::new(),
            stages: EngineStages::default(),
            sessions_skipped: 0,
        };
        let mut acct = MemoryAccountant::new();
        let mut discover_wall = Duration::ZERO;
        let mut last_key: Option<u64> = None;
        for &i in &live {
            let (id, src) = items[i];
            let td = Instant::now();
            let d = discover_source_for_compact(
                program,
                pdg,
                set.get(id),
                id,
                &options.propagate,
                src,
                compact,
            );
            discover_wall += td.elapsed();
            acct.charge(Category::Graph, d.state_bytes);
            acct.release(Category::Graph, d.state_bytes);
            item_steps.lock().expect("steps lock").push((i, d.steps));
            let mut order: Vec<(u64, Vec<(usize, Candidate)>)> = Vec::new();
            let mut slot: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
            for (local, cand) in d.candidates.into_iter().enumerate() {
                let key = cand.sink.func.0 as u64;
                match slot.get(&key) {
                    Some(&g) => order[g].1.push((local, cand)),
                    None => {
                        slot.insert(key, order.len());
                        order.push((key, vec![(local, cand)]));
                    }
                }
            }
            for (key, cands) in order {
                if last_key != Some(key) {
                    engine.begin_group(key);
                    last_key = Some(key);
                }
                let (q_before, tr_before) = tally_totals(&out.tallies);
                for (local, cand) in &cands {
                    let v = solve_candidate(
                        program,
                        pdg,
                        engine.as_mut(),
                        cache,
                        facts.as_deref(),
                        compact,
                        prov,
                        set.get(cand.checker).kind,
                        cand,
                        &mut out.tallies[cand.checker.0],
                    );
                    out.results.push(((i, *local), v));
                }
                let (q_after, tr_after) = tally_totals(&out.tallies);
                if q_after == q_before && tr_after > tr_before {
                    out.sessions_skipped += 1;
                }
            }
        }
        out.memory = engine.memory().clone();
        out.stages = engine.stage_totals();
        discovery_accts.lock().expect("acct lock").push(acct);
        (vec![out], discover_wall, 1)
    } else {
        // Streaming pipeline over the live items only (same machinery as
        // the cold streaming driver: sticky sink routing, bounded queues,
        // deterministic merge keys).
        let producers = options
            .discover_shards
            .unwrap_or(threads)
            .clamp(1, live.len().max(1));
        let queues: Vec<BoundedQueue<StreamGroup>> = (0..threads)
            .map(|_| BoundedQueue::new(2, producers))
            .collect();
        let live_cursor = AtomicUsize::new(0);
        let producers_left = AtomicUsize::new(producers);
        let discover_span: Mutex<Duration> = Mutex::new(Duration::ZERO);
        let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
            for _ in 0..producers {
                let queues = &queues;
                let live = &live;
                let items = &items;
                let live_cursor = &live_cursor;
                let producers_left = &producers_left;
                let discover_span = &discover_span;
                let item_steps = &item_steps;
                let discovery_accts = &discovery_accts;
                scope.spawn(move || {
                    let mut acct = MemoryAccountant::new();
                    let mut consumers_live = true;
                    while consumers_live {
                        let n = live_cursor.fetch_add(1, Ordering::Relaxed);
                        if n >= live.len() {
                            break;
                        }
                        let i = live[n];
                        let (id, src) = items[i];
                        let d = discover_source_for_compact(
                            program,
                            pdg,
                            set.get(id),
                            id,
                            &options.propagate,
                            src,
                            compact,
                        );
                        acct.charge(Category::Graph, d.state_bytes);
                        acct.release(Category::Graph, d.state_bytes);
                        item_steps.lock().expect("steps lock").push((i, d.steps));
                        let mut order: Vec<StreamGroup> = Vec::new();
                        let mut slot: std::collections::HashMap<u64, usize> =
                            std::collections::HashMap::new();
                        for (local, cand) in d.candidates.into_iter().enumerate() {
                            let key = cand.sink.func.0 as u64;
                            match slot.get(&key) {
                                Some(&g) => order[g].cands.push((local, cand)),
                                None => {
                                    slot.insert(key, order.len());
                                    order.push(StreamGroup {
                                        item_idx: i,
                                        sink_key: key,
                                        cands: vec![(local, cand)],
                                    });
                                }
                            }
                        }
                        for group in order {
                            let worker = (group.sink_key as usize) % queues.len();
                            if !queues[worker].send(group) {
                                consumers_live = false;
                                break;
                            }
                        }
                    }
                    if producers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
                        *discover_span.lock().expect("span lock") = t0.elapsed();
                    }
                    for queue in queues {
                        queue.producer_done();
                    }
                    discovery_accts.lock().expect("acct lock").push(acct);
                });
            }
            let mut handles = Vec::new();
            for queue in queues.iter().take(threads) {
                let slice_cache = options.slice_cache.clone();
                let facts = facts.clone();
                handles.push(scope.spawn(move || {
                    let mut engine = factory();
                    if let Some(sc) = slice_cache {
                        engine.attach_slice_cache(sc);
                    }
                    if let Some(f) = &facts {
                        engine.attach_absint(Arc::clone(f));
                    }
                    let mut out = WorkerOut {
                        name: engine.name(),
                        results: Vec::new(),
                        tallies: vec![CandTally::default(); set.len()],
                        memory: MemoryAccountant::new(),
                        stages: EngineStages::default(),
                        sessions_skipped: 0,
                    };
                    let _close_guard = CloseGuard::new(queue);
                    let mut last_key: Option<u64> = None;
                    while let Some(group) = queue.recv() {
                        if last_key != Some(group.sink_key) {
                            engine.begin_group(group.sink_key);
                            last_key = Some(group.sink_key);
                        }
                        let (q_before, tr_before) = tally_totals(&out.tallies);
                        for (local_idx, cand) in &group.cands {
                            let v = solve_candidate(
                                program,
                                pdg,
                                engine.as_mut(),
                                cache,
                                facts.as_deref(),
                                compact,
                                prov,
                                set.get(cand.checker).kind,
                                cand,
                                &mut out.tallies[cand.checker.0],
                            );
                            out.results.push(((group.item_idx, *local_idx), v));
                        }
                        let (q_after, tr_after) = tally_totals(&out.tallies);
                        if q_after == q_before && tr_after > tr_before {
                            out.sessions_skipped += 1;
                        }
                    }
                    out.memory = engine.memory().clone();
                    out.stages = engine.stage_totals();
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("solve worker"))
                .collect()
        });
        let span = *discover_span.lock().expect("span lock");
        (outputs, span, producers)
    };
    let pipeline_wall = t0.elapsed();
    let solve_time = pipeline_wall.saturating_sub(propagate_time);

    let mut merged: Vec<((usize, usize), CandVerdict)> = Vec::new();
    let mut tallies = vec![CandTally::default(); set.len()];
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("session");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    let mut stages = StageStats::default();
    let mut sessions_skipped = 0u64;
    for o in outputs {
        for (t, wt) in tallies.iter_mut().zip(&o.tallies) {
            t.add(wt);
        }
        memories.push(o.memory);
        stages.add_engine(&o.stages);
        sessions_skipped += o.sessions_skipped;
        merged.extend(o.results);
    }
    merged.sort_by_key(|(key, _)| *key);

    // Reassemble the canonical per-item verdict lists: replayed records
    // verbatim, live results in (item, local) order.
    let mut per_item: Vec<Vec<CandVerdict>> = Vec::with_capacity(items.len());
    let mut steps_per_item: Vec<u64> = Vec::with_capacity(items.len());
    for r in replay {
        match r {
            Some(rec) => {
                steps_per_item.push(rec.steps);
                per_item.push(rec.verdicts);
            }
            None => {
                steps_per_item.push(0);
                per_item.push(Vec::new());
            }
        }
    }
    let live_candidates = merged.len() as u64;
    for ((item, _local), v) in merged {
        per_item[item].push(v);
    }
    for (i, s) in item_steps.into_inner().expect("steps lock") {
        steps_per_item[i] = s;
    }

    let mut outcomes = ItemOutcomes::default();
    for (i, (id, src)) in items.iter().enumerate() {
        outcomes.map.insert(
            (id.0, *src),
            ItemRecord {
                verdicts: per_item[i].clone(),
                steps: steps_per_item[i],
            },
        );
    }

    let mut per_checker_steps = vec![0u64; set.len()];
    for (i, (id, _)) in items.iter().enumerate() {
        per_checker_steps[id.0] += steps_per_item[i];
    }
    stages.discover_wall = propagate_time;
    stages.discovery_steps = steps_per_item.iter().sum();
    stages.discovery_shards = shards;
    stages.candidates_reanalyzed = live_candidates;
    fill_triage_stats(&mut stages, &tallies, sessions_skipped);
    fill_compact_stats(&mut stages, compact);

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0)
        + options.slice_cache.as_ref().map(|c| c.bytes()).unwrap_or(0);
    let discovery_accts = discovery_accts.into_inner().expect("acct lock");
    let mem = run_accounting(
        memories.iter().chain(discovery_accts.iter()),
        graph_bytes,
        cache_bytes,
    );
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();
    let slice_stats = options
        .slice_cache
        .as_ref()
        .map(|c| c.stats().since(&slice_before))
        .unwrap_or_default();

    let candidates_total: usize = per_item.iter().map(|v| v.len()).sum();
    let ordered: Vec<(CheckerId, CandVerdict)> = items
        .iter()
        .zip(per_item)
        .flat_map(|(&(id, _), vs)| vs.into_iter().map(move |v| (id, v)))
        .collect();
    let queries = tallies.iter().map(|t| t.queries).sum();
    let checkers = assemble_breakdowns(set, ordered, &tallies, &per_checker_steps);

    let run = MultiAnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        checkers,
        candidates: candidates_total,
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
        slice: slice_stats,
        stages,
    };
    (run, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn run(src: &str) -> AnalysisRun {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        )
    }

    #[test]
    fn reports_feasible_and_suppresses_infeasible() {
        let run = run(
            "extern fn deref(p);\n\
             fn feasible(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn infeasible(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        );
        assert_eq!(run.candidates, 2);
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 1);
        assert_eq!(run.reports[0].verdict, Feasibility::Feasible);
    }

    #[test]
    fn unconditional_flow_is_reported() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 0);
    }

    #[test]
    fn clean_program_reports_nothing() {
        let run = run("extern fn deref(p); fn f(x) { deref(x); return 0; }");
        assert_eq!(run.candidates, 0);
        assert!(run.reports.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = "extern fn deref(p);\n\
             fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
             fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
             fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        let factory = || -> Box<dyn FeasibilityEngine> {
            Box::new(FusionSolver::new(SolverConfig::default()))
        };
        for threads in [1usize, 2, 4] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &factory,
                threads,
                &AnalysisOptions::new(),
            );
            let key = |r: &crate::engine::BugReport| (r.source, r.sink);
            let mut a: Vec<_> = seq.reports.iter().map(key).collect();
            let mut b: Vec<_> = par.reports.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }

    #[test]
    fn timings_and_memory_are_populated() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert!(run.peak_memory > 0);
        assert!(run.queries >= 1);
    }

    const MULTI_SRC: &str = "extern fn deref(p);\n\
         fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
         fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
         fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";

    fn fusion_factory() -> Box<dyn FeasibilityEngine> {
        Box::new(FusionSolver::new(SolverConfig::default()))
    }

    #[test]
    fn parallel_engine_name_keeps_base_and_thread_count() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let run = analyze_parallel(
            &p,
            &g,
            &Checker::null_deref(),
            &fusion_factory,
            4,
            &AnalysisOptions::new(),
        );
        assert_eq!(run.engine, "fusion×4");
    }

    #[test]
    fn sequential_and_parallel_accounting_agree() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = AnalysisOptions::without_cache();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(&p, &g, &Checker::null_deref(), &mut engine, &opts);
        // One worker: the unified accounting path must yield the exact
        // sequential peak.
        let par1 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 1, &opts);
        assert_eq!(seq.peak_memory, par1.peak_memory, "1-thread parity");
        // Many workers: each retains its own engine state, so the summed
        // peak is bounded below by the sequential peak and above by
        // `threads` sequential peaks.
        let par4 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 4, &opts);
        assert!(par4.peak_memory >= seq.peak_memory);
        assert!(par4.peak_memory <= seq.peak_memory * 4);
    }

    #[test]
    fn cached_runs_report_hits_and_identical_reports() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let uncached = {
            let mut e = FusionSolver::new(SolverConfig::default());
            analyze(
                &p,
                &g,
                &Checker::null_deref(),
                &mut e,
                &AnalysisOptions::without_cache(),
            )
        };
        assert_eq!(uncached.cache, crate::cache::CacheStats::default());

        // Two sequential runs sharing one cache: the second run is all hits.
        let shared = VerdictCache::new();
        let opts = AnalysisOptions::new();
        let mut e1 = FusionSolver::new(SolverConfig::default());
        let first = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e1,
            &opts,
            Some(&shared),
        );
        assert!(first.cache.misses > 0);
        assert!(first.cache.inserts > 0);
        let mut e2 = FusionSolver::new(SolverConfig::default());
        let second = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e2,
            &opts,
            Some(&shared),
        );
        assert!(second.cache.hits > 0, "warm cache must hit");
        assert_eq!(second.queries, 0, "every verdict came from the cache");

        for cached in [&first, &second] {
            let a: Vec<_> = uncached
                .reports
                .iter()
                .map(|r| (r.source, r.sink))
                .collect();
            let b: Vec<_> = cached.reports.iter().map(|r| (r.source, r.sink)).collect();
            assert_eq!(a, b, "cache must not change reports");
            assert_eq!(uncached.suppressed, cached.suppressed);
        }
    }

    const FUSED_SRC: &str = "extern fn deref(p); extern fn gets(); extern fn fopen(x);\n\
         extern fn getpass(); extern fn sendmsg(y);\n\
         fn a(c) { let q = null; let r = 1; if (c > 0) { r = q; } deref(r); return 0; }\n\
         fn b(c) { let t = gets(); if (c > 1) { fopen(t); } return 0; }\n\
         fn d() { let s = getpass(); sendmsg(s); return 0; }";

    fn report_key(r: &BugReport) -> (Vertex, Vertex, Feasibility, Vec<Vertex>) {
        (r.source, r.sink, r.verdict, r.path.nodes.clone())
    }

    #[test]
    fn fused_multi_matches_per_checker_runs() {
        let p = compile(FUSED_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let set = CheckerSet::all();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let fused = analyze_multi(&p, &g, &set, &mut engine, &AnalysisOptions::new());
        assert_eq!(fused.checkers.len(), 3);
        assert_eq!(
            fused.checkers.iter().map(|b| b.candidates).sum::<usize>(),
            fused.candidates
        );
        assert_eq!(
            fused.checkers.iter().map(|b| b.queries).sum::<usize>(),
            fused.queries
        );
        for (id, checker) in set.iter() {
            let mut e = FusionSolver::new(SolverConfig::default());
            let single = analyze(&p, &g, checker, &mut e, &AnalysisOptions::new());
            let b = &fused.checkers[id.0];
            assert_eq!(b.kind, checker.kind);
            assert_eq!(b.candidates, single.candidates, "candidates for {id}");
            assert_eq!(b.suppressed, single.suppressed, "suppressed for {id}");
            let av: Vec<_> = single.reports.iter().map(report_key).collect();
            let bv: Vec<_> = b.reports.iter().map(report_key).collect();
            assert_eq!(av, bv, "reports for {id}");
        }
        // The flattened view concatenates per-checker reports.
        assert_eq!(
            fused.all_reports().count(),
            fused
                .checkers
                .iter()
                .map(|b| b.reports.len())
                .sum::<usize>()
        );
    }

    #[test]
    fn fused_parallel_and_streaming_match_fused_sequential() {
        let p = compile(FUSED_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let set = CheckerSet::all();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze_multi(&p, &g, &set, &mut engine, &AnalysisOptions::new());
        for threads in [1usize, 2, 4] {
            let par = analyze_multi_parallel(
                &p,
                &g,
                &set,
                &fusion_factory,
                threads,
                &AnalysisOptions::new(),
            );
            let stream = analyze_multi_streaming(
                &p,
                &g,
                &set,
                &fusion_factory,
                threads,
                &AnalysisOptions::new(),
            );
            assert_eq!(par.engine, format!("fusion×{threads}"));
            assert_eq!(stream.engine, format!("fusion×{threads}"));
            for run in [&par, &stream] {
                assert_eq!(run.candidates, seq.candidates, "threads={threads}");
                for (sb, rb) in seq.checkers.iter().zip(&run.checkers) {
                    assert_eq!(sb.kind, rb.kind);
                    assert_eq!(sb.suppressed, rb.suppressed, "threads={threads}");
                    let a: Vec<_> = sb.reports.iter().map(report_key).collect();
                    let b: Vec<_> = rb.reports.iter().map(report_key).collect();
                    assert_eq!(a, b, "threads={threads} kind={}", sb.kind);
                }
            }
        }
    }

    #[test]
    fn compaction_preserves_reports_and_shrinks_work() {
        // `dead` gives pruning something to remove, the `id` corridor
        // collapses to a chain, and the byte-identical bodies of `f` and
        // `g` exercise the isomorphic verdict memo: the compacted run
        // must produce the same reports with strictly fewer discovery
        // steps and strictly fewer solver queries.
        let src = "extern fn deref(p);\n\
             fn dead(y) { let z = y + 1; return z; }\n\
             fn id(x) { return x; }\n\
             fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn g(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn h(c) { let q = null; let u = id(q); let n = dead(c); if (c > n) { deref(u); } return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let set = CheckerSet::all();
        let off = AnalysisOptions {
            compact: false,
            ..AnalysisOptions::new()
        };
        let on = AnalysisOptions {
            compact: true,
            ..AnalysisOptions::new()
        };
        let mut e1 = FusionSolver::new(SolverConfig::default());
        let plain = analyze_multi(&p, &g, &set, &mut e1, &off);
        let mut e2 = FusionSolver::new(SolverConfig::default());
        let compacted = analyze_multi(&p, &g, &set, &mut e2, &on);
        for (pb, cb) in plain.checkers.iter().zip(&compacted.checkers) {
            assert_eq!(pb.kind, cb.kind);
            assert_eq!(pb.candidates, cb.candidates);
            assert_eq!(pb.suppressed, cb.suppressed);
            let a: Vec<_> = pb.reports.iter().map(report_key).collect();
            let b: Vec<_> = cb.reports.iter().map(report_key).collect();
            assert_eq!(a, b, "reports must be byte-identical for {}", pb.kind);
        }
        assert_eq!(plain.stages.vertices_pruned, 0, "off ⇒ no pruning stats");
        assert!(compacted.stages.vertices_pruned > 0);
        assert!(compacted.stages.edges_pruned > 0);
        assert!(compacted.stages.chains_collapsed > 0);
        assert!(
            compacted.stages.discovery_steps < plain.stages.discovery_steps,
            "compacted discovery {} must undercut plain {}",
            compacted.stages.discovery_steps,
            plain.stages.discovery_steps
        );
        assert!(compacted.stages.iso_hits > 0, "f/g paths are isomorphic");
        assert!(
            compacted.queries < plain.queries,
            "iso sharing must drop queries ({} vs {})",
            compacted.queries,
            plain.queries
        );
    }

    #[test]
    fn fused_pass_shares_sessions_and_discovery() {
        // Three per-checker passes open at least one session per checker
        // with candidates; the fused pass shares groups keyed on the sink
        // function only, so it can never open more sessions than the sum.
        let p = compile(FUSED_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let set = CheckerSet::all();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let fused = analyze_multi(&p, &g, &set, &mut engine, &AnalysisOptions::without_cache());
        assert!(fused.stages.sessions_opened >= 1);
        let mut loop_sessions = 0u64;
        let mut loop_steps = 0u64;
        for (_, checker) in set.iter() {
            let mut e = FusionSolver::new(SolverConfig::default());
            let run = analyze(&p, &g, checker, &mut e, &AnalysisOptions::without_cache());
            loop_sessions += run.stages.sessions_opened;
            loop_steps += run.stages.discovery_steps;
        }
        assert!(fused.stages.sessions_opened <= loop_sessions);
        // Discovery work is identical — it is the redundant *passes* the
        // fusion removes, not steps.
        assert_eq!(fused.stages.discovery_steps, loop_steps);
        assert_eq!(
            fused
                .checkers
                .iter()
                .map(|b| b.discovery_steps)
                .sum::<u64>(),
            fused.stages.discovery_steps
        );
    }

    #[test]
    fn single_checker_wrappers_ride_the_fused_path() {
        // The singleton-set wrappers must report exactly what the fused
        // driver's breakdown holds.
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let set = CheckerSet::single(Checker::null_deref());
        let mut e1 = FusionSolver::new(SolverConfig::default());
        let multi = analyze_multi(&p, &g, &set, &mut e1, &AnalysisOptions::new());
        let mut e2 = FusionSolver::new(SolverConfig::default());
        let single = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e2,
            &AnalysisOptions::new(),
        );
        assert_eq!(multi.checkers.len(), 1);
        let a: Vec<_> = multi.checkers[0].reports.iter().map(report_key).collect();
        let b: Vec<_> = single.reports.iter().map(report_key).collect();
        assert_eq!(a, b);
        assert_eq!(multi.candidates, single.candidates);
        assert_eq!(multi.queries, single.queries);
    }

    #[test]
    fn work_stealing_merge_is_byte_identical_to_sequential() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::without_cache(),
        );
        for threads in [1usize, 2, 4, 8] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &fusion_factory,
                threads,
                &AnalysisOptions::new(),
            );
            // Not just set equality: identical order and contents.
            let a: Vec<_> = seq
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            let b: Vec<_> = par
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }
}

//! The versioned on-disk snapshot format behind partitioned analysis and
//! serve-mode `save`/`load` (ROADMAP item 3).
//!
//! A snapshot is a single file (or byte buffer) holding a set of
//! independently addressable, FNV-checksummed **sections**:
//!
//! ```text
//! "FSNP" | version u32 | section count u32
//! table: (tag u32, index u32, offset u64, len u64, checksum u64) ×count
//! payloads...
//! ```
//!
//! Sections come in whole-program flavors (call-graph summary, recorded
//! work-item outcomes, verdict-cache entries, provenance spans) and
//! **per-function** flavors (IR body, abstract facts, PDG partition), so
//! a reader can materialize exactly the functions it needs: a shard
//! worker ([`crate::shard`]) loads only its closure's `FUNC`/`FACTS`
//! sections and never decodes the rest of the program. Reads are lazy —
//! [`Snapshot::section`] seeks to one payload, validates its checksum,
//! and decodes nothing else.
//!
//! §3.2.2 discipline: the format carries dependence *structure* (SSA
//! bodies, adjacency, call edges), unconditional *facts* (absint
//! values, return summaries), and three-valued *verdicts* — never a
//! path condition. There is deliberately no section a formula could
//! round-trip through.
//!
//! Every decode error is position-annotated ([`SnapshotError`] carries
//! the absolute byte offset) and recoverable — corrupt, truncated, or
//! version-skewed input returns `Err`, never panics.

use crate::absint::ProgramFacts;
use crate::cache::{Key128, VerdictCache};
use crate::compact::IsoVerdicts;
use crate::engine::{CandVerdict, Feasibility, ItemOutcomes, ItemRecord};
use crate::incremental::Provenance;
use crate::quickpath::RetSummary;
use fusion_ir::interner::Interner;
use fusion_ir::ssa::{CallSite, CallSiteId, Def, DefKind, FuncId, Function, Op, Program, VarId};
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File magic: "FSNP" (Fusion SNaPshot).
pub const MAGIC: [u8; 4] = *b"FSNP";
/// Current format version. Readers reject any other version with a
/// position-annotated error (no silent best-effort decoding).
pub const VERSION: u32 = 1;

/// Section tags. Per-function sections pair the tag with the function's
/// global index; whole-program sections use index 0.
pub mod tag {
    /// Whole-program metadata: function and call-site counts.
    pub const META: u32 = 1;
    /// Call-graph summary: per-function externality, def count, name,
    /// and deduplicated callee list — everything the partitioner needs
    /// without touching a single body.
    pub const CALLGRAPH: u32 = 2;
    /// One function's full SSA body (per-function index).
    pub const FUNC: u32 = 3;
    /// One function's abstract facts + return fact (per-function index).
    pub const FACTS: u32 = 4;
    /// One function's PDG partition: the def→uses adjacency
    /// (per-function index).
    pub const PDG: u32 = 5;
    /// Recorded `(checker, source)` work-item outcomes.
    pub const OUTCOMES: u32 = 6;
    /// Verdict-cache entries (`Key128 → Feasibility`).
    pub const VERDICTS: u32 = 7;
    /// Iso-memo entries (`Key128 → Feasibility`).
    pub const ISO: u32 = 8;
    /// Verdict provenance spans (`Key128 → function ids`).
    pub const PROV_VERDICTS: u32 = 9;
    /// Iso provenance spans (`Key128 → function ids`).
    pub const PROV_ISO: u32 = 10;
}

/// A position-annotated snapshot decode/IO error. Never produced by a
/// panic: every read is bounds-checked and every checksum verified.
#[derive(Debug)]
pub struct SnapshotError {
    /// Absolute byte offset (into the file/buffer) nearest the problem.
    pub offset: u64,
    /// What went wrong.
    pub what: String,
}

impl SnapshotError {
    fn new(offset: u64, what: impl Into<String>) -> SnapshotError {
        SnapshotError {
            offset,
            what: what.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over raw bytes (single stream; the section integrity check).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Little-endian primitive encoders over a growing byte buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_var(&mut self, v: Option<VarId>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x.0);
            }
        }
    }
}

/// Builds a snapshot: accumulate sections, then [`SnapshotWriter::finish`]
/// into the container bytes (or write them to a path).
pub struct SnapshotWriter {
    sections: Vec<(u32, u32, Vec<u8>)>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// An empty snapshot under construction.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter {
            sections: Vec::new(),
        }
    }

    /// Adds one section payload under `(tag, index)`.
    pub fn add(&mut self, tag: u32, index: u32, payload: Vec<u8>) {
        self.sections.push((tag, index, payload));
    }

    /// Assembles the container: header, checksummed section table,
    /// payloads.
    pub fn finish(self) -> Vec<u8> {
        let header = 12 + self.sections.len() * 32;
        let mut out = Vec::with_capacity(
            header + self.sections.iter().map(|(_, _, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = header as u64;
        for (tag, index, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, _, payload) in self.sections {
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Assembles and writes the container to `path`, returning the byte
    /// count written.
    pub fn write_to(self, path: &std::path::Path) -> Result<u64, SnapshotError> {
        let bytes = self.finish();
        std::fs::write(path, &bytes)
            .map_err(|e| SnapshotError::new(0, format!("write {}: {e}", path.display())))?;
        Ok(bytes.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian decoders over one section's payload.
/// Every error carries the absolute byte offset (`base + position`).
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], base: u64) -> Dec<'a> {
        Dec { buf, pos: 0, base }
    }

    fn err(&self, what: impl Into<String>) -> SnapshotError {
        SnapshotError::new(self.base + self.pos as u64, what)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(self.err(format!(
                "truncated: need {n} bytes, {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed count that must be plausible for the remaining
    /// payload (guards against a corrupt length causing a huge
    /// allocation).
    fn count(&mut self, per_item: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(per_item.max(1)) > remaining {
            return Err(self.err(format!(
                "corrupt count {n}: exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid UTF-8: {e}")))
    }

    fn opt_var(&mut self) -> Result<Option<VarId>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(VarId(self.u32()?))),
            t => Err(self.err(format!("invalid option tag {t}"))),
        }
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(self.err(format!(
                "{} trailing bytes in section",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

struct SectionEntry {
    tag: u32,
    index: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

enum Source {
    Mem(Vec<u8>),
    File(Mutex<File>),
}

/// An opened snapshot: parsed header + section table over a lazily-read
/// byte source. Payloads are fetched and checksum-verified one section
/// at a time — opening a snapshot of a million-function program reads
/// only the table.
pub struct Snapshot {
    source: Source,
    table: Vec<SectionEntry>,
    bytes_read: AtomicU64,
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("sections", &self.table.len())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

impl Snapshot {
    /// Total bytes fetched from the source so far (header + every
    /// section payload read), for the `snapshot_bytes_read` counter.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Whether a `(tag, index)` section exists.
    pub fn has(&self, tag: u32, index: u32) -> bool {
        self.table.iter().any(|s| s.tag == tag && s.index == index)
    }

    /// Reads and checksum-verifies one section payload.
    pub fn section(&self, tag: u32, index: u32) -> Result<Vec<u8>, SnapshotError> {
        let entry = self
            .table
            .iter()
            .find(|s| s.tag == tag && s.index == index)
            .ok_or_else(|| {
                SnapshotError::new(0, format!("missing section tag {tag} index {index}"))
            })?;
        let payload = match &self.source {
            Source::Mem(bytes) => {
                bytes[entry.offset as usize..(entry.offset + entry.len) as usize].to_vec()
            }
            Source::File(file) => {
                let mut file = file.lock().expect("snapshot file poisoned");
                file.seek(SeekFrom::Start(entry.offset))
                    .map_err(|e| SnapshotError::new(entry.offset, format!("seek section: {e}")))?;
                let mut buf = vec![0u8; entry.len as usize];
                file.read_exact(&mut buf)
                    .map_err(|e| SnapshotError::new(entry.offset, format!("read section: {e}")))?;
                buf
            }
        };
        self.bytes_read.fetch_add(entry.len, Ordering::Relaxed);
        let sum = fnv1a(&payload);
        if sum != entry.checksum {
            return Err(SnapshotError::new(
                entry.offset,
                format!(
                    "checksum mismatch in section tag {tag} index {index}: \
                     stored {:#018x}, computed {sum:#018x}",
                    entry.checksum
                ),
            ));
        }
        Ok(payload)
    }

    /// The absolute payload offset of `(tag, index)`, for error bases.
    fn offset_of(&self, tag: u32, index: u32) -> u64 {
        self.table
            .iter()
            .find(|s| s.tag == tag && s.index == index)
            .map(|s| s.offset)
            .unwrap_or(0)
    }
}

fn parse_header(head: &[u8], total_len: u64) -> Result<Vec<SectionEntry>, SnapshotError> {
    let mut d = Dec::new(head, 0);
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(SnapshotError::new(
            0,
            format!("bad magic {magic:?}, expected {MAGIC:?}"),
        ));
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(SnapshotError::new(
            4,
            format!("unsupported snapshot version {version} (reader supports {VERSION})"),
        ));
    }
    let count = d.u32()? as u64;
    let table_end = 12 + count * 32;
    if table_end > total_len {
        return Err(SnapshotError::new(
            8,
            format!(
                "truncated section table: {count} entries need {table_end} bytes, file has {total_len}"
            ),
        ));
    }
    if head.len() < table_end as usize {
        return Err(SnapshotError::new(
            12,
            "header buffer too short".to_string(),
        ));
    }
    let mut table = Vec::with_capacity(count as usize);
    for i in 0..count {
        let base = 12 + i * 32;
        let mut e = Dec::new(&head[base as usize..base as usize + 32], base);
        let entry = SectionEntry {
            tag: e.u32()?,
            index: e.u32()?,
            offset: e.u64()?,
            len: e.u64()?,
            checksum: e.u64()?,
        };
        if entry.offset < table_end
            || entry.offset.checked_add(entry.len).is_none()
            || entry.offset + entry.len > total_len
        {
            return Err(SnapshotError::new(
                base,
                format!(
                    "section tag {} index {} spans {}..{} outside file of {} bytes",
                    entry.tag,
                    entry.index,
                    entry.offset,
                    entry.offset.saturating_add(entry.len),
                    total_len
                ),
            ));
        }
        table.push(entry);
    }
    Ok(table)
}

/// Opens a snapshot file, reading header + full section table eagerly;
/// payloads stay on disk until [`Snapshot::section`] asks for them.
pub fn open_file(path: &std::path::Path) -> Result<Snapshot, SnapshotError> {
    let mut file = File::open(path)
        .map_err(|e| SnapshotError::new(0, format!("open {}: {e}", path.display())))?;
    let total_len = file
        .metadata()
        .map_err(|e| SnapshotError::new(0, format!("stat {}: {e}", path.display())))?
        .len();
    if total_len < 12 {
        return Err(SnapshotError::new(
            total_len,
            format!("truncated header: {total_len} bytes, need at least 12"),
        ));
    }
    let mut prefix = [0u8; 12];
    file.read_exact(&mut prefix)
        .map_err(|e| SnapshotError::new(0, format!("read header: {e}")))?;
    let count = u32::from_le_bytes(prefix[8..12].try_into().unwrap()) as u64;
    let head_len = (12 + count * 32).min(total_len) as usize;
    let mut head = vec![0u8; head_len];
    head[..12].copy_from_slice(&prefix);
    file.read_exact(&mut head[12..])
        .map_err(|e| SnapshotError::new(12, format!("read section table: {e}")))?;
    let table = parse_header(&head, total_len)?;
    Ok(Snapshot {
        source: Source::File(Mutex::new(file)),
        table,
        bytes_read: AtomicU64::new(head_len as u64),
    })
}

/// Opens an in-memory snapshot, parsing header + full section table.
pub fn open_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
    let total_len = bytes.len() as u64;
    if total_len < 12 {
        return Err(SnapshotError::new(
            total_len,
            format!("truncated header: {total_len} bytes, need at least 12"),
        ));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as u64;
    let head_len = (12 + count * 32).min(total_len) as usize;
    let table = parse_header(&bytes[..head_len], total_len)?;
    Ok(Snapshot {
        source: Source::Mem(bytes),
        table,
        bytes_read: AtomicU64::new(head_len as u64),
    })
}

// ---------------------------------------------------------------------------
// Program sections
// ---------------------------------------------------------------------------

/// A decoded function with *global* identities (callee [`FuncId`]s and
/// [`CallSiteId`]s as in the snapshotted program) and names as strings
/// (symbols are interner-relative and never serialized). The shard layer
/// re-interns and renumbers these into a dense sub-program.
#[derive(Debug, Clone)]
pub struct RawFunction {
    /// Function name.
    pub name: String,
    /// External declaration (no body)?
    pub is_extern: bool,
    /// Parameter variables.
    pub params: Vec<VarId>,
    /// The return definition, if any.
    pub ret: Option<VarId>,
    /// Definitions in program order: `(diagnostic name, kind, guard)`.
    pub defs: Vec<(String, DefKind, Option<VarId>)>,
}

/// Per-function call-graph summary decoded from [`tag::CALLGRAPH`] —
/// everything partitioning needs without materializing any body.
#[derive(Debug, Clone)]
pub struct CallGraphInfo {
    /// Per-function externality.
    pub is_extern: Vec<bool>,
    /// Per-function definition count (the partition balance weight).
    pub def_counts: Vec<u64>,
    /// Per-function deduplicated callee list.
    pub callees: Vec<Vec<u32>>,
}

impl CallGraphInfo {
    /// Builds the summary directly from a program (the writer side and
    /// the in-process coordinator use this; workers decode it from the
    /// snapshot).
    pub fn of_program(program: &Program) -> CallGraphInfo {
        let n = program.functions.len();
        let mut info = CallGraphInfo {
            is_extern: Vec::with_capacity(n),
            def_counts: Vec::with_capacity(n),
            callees: Vec::with_capacity(n),
        };
        for f in &program.functions {
            let mut callees: Vec<u32> = f
                .defs
                .iter()
                .filter_map(|d| match &d.kind {
                    DefKind::Call { callee, .. } => Some(callee.0),
                    _ => None,
                })
                .collect();
            callees.sort_unstable();
            callees.dedup();
            info.is_extern.push(f.is_extern);
            info.def_counts.push(f.defs.len() as u64);
            info.callees.push(callees);
        }
        info
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.is_extern.len()
    }

    /// Whether the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.is_extern.is_empty()
    }
}

fn encode_def_kind(e: &mut Enc, kind: &DefKind) {
    match kind {
        DefKind::Param { index } => {
            e.u8(0);
            e.u32(*index as u32);
        }
        DefKind::Const { value, is_null } => {
            e.u8(1);
            e.u32(*value);
            e.u8(*is_null as u8);
        }
        DefKind::Copy { src } => {
            e.u8(2);
            e.u32(src.0);
        }
        DefKind::Binary { op, lhs, rhs } => {
            e.u8(3);
            e.u8(op_code(*op));
            e.u32(lhs.0);
            e.u32(rhs.0);
        }
        DefKind::Ite {
            cond,
            then_v,
            else_v,
        } => {
            e.u8(4);
            e.u32(cond.0);
            e.u32(then_v.0);
            e.u32(else_v.0);
        }
        DefKind::Call { callee, args, site } => {
            e.u8(5);
            e.u32(callee.0);
            e.u32(site.0);
            e.u32(args.len() as u32);
            for a in args {
                e.u32(a.0);
            }
        }
        DefKind::Branch { cond } => {
            e.u8(6);
            e.u32(cond.0);
        }
        DefKind::Return { src } => {
            e.u8(7);
            e.u32(src.0);
        }
    }
}

fn decode_def_kind(d: &mut Dec<'_>) -> Result<DefKind, SnapshotError> {
    Ok(match d.u8()? {
        0 => DefKind::Param {
            index: d.u32()? as usize,
        },
        1 => DefKind::Const {
            value: d.u32()?,
            is_null: d.u8()? != 0,
        },
        2 => DefKind::Copy {
            src: VarId(d.u32()?),
        },
        3 => DefKind::Binary {
            op: op_from_code(d.u8()?).ok_or_else(|| d.err("invalid binary op code"))?,
            lhs: VarId(d.u32()?),
            rhs: VarId(d.u32()?),
        },
        4 => DefKind::Ite {
            cond: VarId(d.u32()?),
            then_v: VarId(d.u32()?),
            else_v: VarId(d.u32()?),
        },
        5 => {
            let callee = FuncId(d.u32()?);
            let site = CallSiteId(d.u32()?);
            let n = d.count(4)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(VarId(d.u32()?));
            }
            DefKind::Call { callee, args, site }
        }
        6 => DefKind::Branch {
            cond: VarId(d.u32()?),
        },
        7 => DefKind::Return {
            src: VarId(d.u32()?),
        },
        t => return Err(d.err(format!("invalid def kind tag {t}"))),
    })
}

fn op_code(op: Op) -> u8 {
    match op {
        Op::Add => 0,
        Op::Sub => 1,
        Op::Mul => 2,
        Op::Udiv => 3,
        Op::Urem => 4,
        Op::And => 5,
        Op::Or => 6,
        Op::Xor => 7,
        Op::Shl => 8,
        Op::Lshr => 9,
        Op::Ashr => 10,
        Op::Slt => 11,
        Op::Sle => 12,
        Op::Ult => 13,
        Op::Ule => 14,
        Op::Eq => 15,
        Op::Ne => 16,
    }
}

fn op_from_code(c: u8) -> Option<Op> {
    Some(match c {
        0 => Op::Add,
        1 => Op::Sub,
        2 => Op::Mul,
        3 => Op::Udiv,
        4 => Op::Urem,
        5 => Op::And,
        6 => Op::Or,
        7 => Op::Xor,
        8 => Op::Shl,
        9 => Op::Lshr,
        10 => Op::Ashr,
        11 => Op::Slt,
        12 => Op::Sle,
        13 => Op::Ult,
        14 => Op::Ule,
        15 => Op::Eq,
        16 => Op::Ne,
        _ => return None,
    })
}

/// Adds the program sections: [`tag::META`], [`tag::CALLGRAPH`], and one
/// [`tag::FUNC`] per function. Call-site metadata is *not* stored — the
/// table is reconstructed exactly from the call definitions on read.
pub fn write_program(w: &mut SnapshotWriter, program: &Program) {
    let mut meta = Enc::new();
    meta.u32(program.functions.len() as u32);
    meta.u32(program.call_sites.len() as u32);
    w.add(tag::META, 0, meta.buf);

    let info = CallGraphInfo::of_program(program);
    let mut cg = Enc::new();
    cg.u32(info.len() as u32);
    for i in 0..info.len() {
        cg.u8(info.is_extern[i] as u8);
        cg.u64(info.def_counts[i]);
        cg.str(program.name(program.functions[i].name));
        cg.u32(info.callees[i].len() as u32);
        for &c in &info.callees[i] {
            cg.u32(c);
        }
    }
    w.add(tag::CALLGRAPH, 0, cg.buf);

    for f in &program.functions {
        let mut e = Enc::new();
        e.str(program.name(f.name));
        e.u8(f.is_extern as u8);
        e.u32(f.params.len() as u32);
        for p in &f.params {
            e.u32(p.0);
        }
        e.opt_var(f.ret);
        e.u32(f.defs.len() as u32);
        for def in &f.defs {
            e.u32(def.var.0);
            e.str(program.name(def.name));
            e.opt_var(def.guard);
            encode_def_kind(&mut e, &def.kind);
        }
        w.add(tag::FUNC, f.id.0, e.buf);
    }
}

/// Decodes `(function count, call-site count)` from [`tag::META`].
pub fn read_meta(snap: &Snapshot) -> Result<(usize, usize), SnapshotError> {
    let payload = snap.section(tag::META, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::META, 0));
    let funcs = d.u32()? as usize;
    let sites = d.u32()? as usize;
    d.done()?;
    Ok((funcs, sites))
}

/// Decodes the call-graph summary from [`tag::CALLGRAPH`].
pub fn read_callgraph(snap: &Snapshot) -> Result<CallGraphInfo, SnapshotError> {
    let payload = snap.section(tag::CALLGRAPH, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::CALLGRAPH, 0));
    let n = d.count(10)?;
    let mut info = CallGraphInfo {
        is_extern: Vec::with_capacity(n),
        def_counts: Vec::with_capacity(n),
        callees: Vec::with_capacity(n),
    };
    for _ in 0..n {
        info.is_extern.push(d.u8()? != 0);
        info.def_counts.push(d.u64()?);
        let _name = d.str()?;
        let m = d.count(4)?;
        let mut callees = Vec::with_capacity(m);
        for _ in 0..m {
            let c = d.u32()?;
            if c as usize >= n {
                return Err(d.err(format!("callee id {c} out of range ({n} functions)")));
            }
            callees.push(c);
        }
        info.callees.push(callees);
    }
    d.done()?;
    Ok(info)
}

/// Decodes one function's body from its [`tag::FUNC`] section, with
/// global identities intact.
pub fn read_function(snap: &Snapshot, index: u32) -> Result<RawFunction, SnapshotError> {
    let payload = snap.section(tag::FUNC, index)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::FUNC, index));
    let name = d.str()?;
    let is_extern = d.u8()? != 0;
    let np = d.count(4)?;
    let mut params = Vec::with_capacity(np);
    for _ in 0..np {
        params.push(VarId(d.u32()?));
    }
    let ret = d.opt_var()?;
    let nd = d.count(8)?;
    let mut defs = Vec::with_capacity(nd);
    for i in 0..nd {
        let var = d.u32()?;
        if var as usize != i {
            return Err(d.err(format!("def {i} declares var {var} (must be dense)")));
        }
        let dname = d.str()?;
        let guard = d.opt_var()?;
        let kind = decode_def_kind(&mut d)?;
        defs.push((dname, kind, guard));
    }
    d.done()?;
    Ok(RawFunction {
        name,
        is_extern,
        params,
        ret,
        defs,
    })
}

/// Decodes the whole program (every function section), re-interning all
/// names and reconstructing the call-site table from the call
/// definitions. The serve `load` path uses this; shard workers use
/// [`read_function`] per closure member instead.
pub fn read_program(snap: &Snapshot) -> Result<Program, SnapshotError> {
    let (nfuncs, nsites) = read_meta(snap)?;
    let mut interner = Interner::new();
    let mut functions = Vec::with_capacity(nfuncs);
    let mut call_sites: Vec<Option<CallSite>> = vec![None; nsites];
    for i in 0..nfuncs {
        let raw = read_function(snap, i as u32)?;
        let name = interner.intern(&raw.name);
        let id = FuncId(i as u32);
        let mut defs = Vec::with_capacity(raw.defs.len());
        for (j, (dname, kind, guard)) in raw.defs.into_iter().enumerate() {
            if let DefKind::Call { callee, site, .. } = &kind {
                let s = site.index();
                if s >= nsites {
                    return Err(SnapshotError::new(
                        snap.offset_of(tag::FUNC, i as u32),
                        format!("call site {s} out of range ({nsites} sites)"),
                    ));
                }
                call_sites[s] = Some(CallSite {
                    caller: id,
                    stmt: VarId(j as u32),
                    callee: *callee,
                });
            }
            defs.push(Def {
                var: VarId(j as u32),
                kind,
                guard,
                name: interner.intern(&dname),
            });
        }
        functions.push(Function {
            name,
            id,
            params: raw.params,
            defs,
            ret: raw.ret,
            is_extern: raw.is_extern,
        });
    }
    let call_sites: Vec<CallSite> = call_sites
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| {
                SnapshotError::new(0, format!("call site {i} referenced by no call definition"))
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(Program {
        functions,
        call_sites,
        interner,
    })
}

// ---------------------------------------------------------------------------
// Facts sections
// ---------------------------------------------------------------------------

fn encode_absval(e: &mut Enc, v: &crate::absint::AbsVal) {
    match v.shape {
        RetSummary::Const(c) => {
            e.u8(0);
            e.u32(c);
        }
        RetSummary::Affine { index, mul, add } => {
            e.u8(1);
            e.u32(index as u32);
            e.u32(mul);
            e.u32(add);
        }
        RetSummary::Opaque => e.u8(2),
    }
    e.u32(v.lo);
    e.u32(v.hi);
    e.u32(v.known);
    e.u32(v.value);
}

fn decode_absval(d: &mut Dec<'_>) -> Result<crate::absint::AbsVal, SnapshotError> {
    let shape = match d.u8()? {
        0 => RetSummary::Const(d.u32()?),
        1 => RetSummary::Affine {
            index: d.u32()? as usize,
            mul: d.u32()?,
            add: d.u32()?,
        },
        2 => RetSummary::Opaque,
        t => return Err(d.err(format!("invalid shape tag {t}"))),
    };
    Ok(crate::absint::AbsVal {
        shape,
        lo: d.u32()?,
        hi: d.u32()?,
        known: d.u32()?,
        value: d.u32()?,
    })
}

/// Adds one [`tag::FACTS`] section per function: the per-definition
/// abstract values and the return fact.
pub fn write_facts(w: &mut SnapshotWriter, program: &Program, facts: &ProgramFacts) {
    for f in &program.functions {
        let mut e = Enc::new();
        let vals = facts.function(f.id);
        e.u32(vals.len() as u32);
        for v in vals {
            encode_absval(&mut e, v);
        }
        encode_absval(&mut e, &facts.ret_fact(f.id));
        w.add(tag::FACTS, f.id.0, e.buf);
    }
}

/// Decodes one function's `(per-def values, return fact)` from its
/// [`tag::FACTS`] section.
pub fn read_func_facts(
    snap: &Snapshot,
    index: u32,
) -> Result<(Vec<crate::absint::AbsVal>, crate::absint::AbsVal), SnapshotError> {
    let payload = snap.section(tag::FACTS, index)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::FACTS, index));
    let n = d.count(17)?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(decode_absval(&mut d)?);
    }
    let ret = decode_absval(&mut d)?;
    d.done()?;
    Ok((vals, ret))
}

/// Decodes every function's facts into a whole-program [`ProgramFacts`]
/// (the serve `load` path).
pub fn read_facts(snap: &Snapshot, program: &Program) -> Result<ProgramFacts, SnapshotError> {
    let n = program.functions.len();
    let mut funcs = Vec::with_capacity(n);
    let mut rets = Vec::with_capacity(n);
    for i in 0..n {
        let (vals, ret) = read_func_facts(snap, i as u32)?;
        funcs.push(vals);
        rets.push(ret);
    }
    Ok(ProgramFacts::from_parts(n, program.size(), funcs, rets))
}

// ---------------------------------------------------------------------------
// PDG partition sections
// ---------------------------------------------------------------------------

/// Adds one [`tag::PDG`] section per function: the def→uses adjacency
/// partition. A reader can verify or reconstruct a shard's dependence
/// structure without re-deriving it from the bodies.
pub fn write_pdg(w: &mut SnapshotWriter, program: &Program, pdg: &Pdg) {
    for f in &program.functions {
        let mut e = Enc::new();
        e.u32(f.defs.len() as u32);
        for def in &f.defs {
            let uses = pdg.uses(f.id, def.var);
            e.u32(uses.len() as u32);
            for (user, slot) in uses {
                e.u32(user.0);
                e.u32(*slot as u32);
            }
        }
        w.add(tag::PDG, f.id.0, e.buf);
    }
}

/// Decodes one function's PDG partition (`uses[v] = [(user, slot)]`).
pub fn read_func_pdg(
    snap: &Snapshot,
    index: u32,
) -> Result<Vec<Vec<(VarId, usize)>>, SnapshotError> {
    let payload = snap.section(tag::PDG, index)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::PDG, index));
    let n = d.count(4)?;
    let mut uses = Vec::with_capacity(n);
    for _ in 0..n {
        let m = d.count(8)?;
        let mut row = Vec::with_capacity(m);
        for _ in 0..m {
            let user = VarId(d.u32()?);
            let slot = d.u32()? as usize;
            row.push((user, slot));
        }
        uses.push(row);
    }
    d.done()?;
    Ok(uses)
}

// ---------------------------------------------------------------------------
// Verdict / feasibility sections
// ---------------------------------------------------------------------------

fn feas_code(f: Feasibility) -> u8 {
    match f {
        Feasibility::Feasible => 0,
        Feasibility::Infeasible => 1,
        Feasibility::Unknown => 2,
    }
}

fn feas_from_code(c: u8) -> Option<Feasibility> {
    Some(match c {
        0 => Feasibility::Feasible,
        1 => Feasibility::Infeasible,
        2 => Feasibility::Unknown,
        _ => return None,
    })
}

fn encode_key_map(entries: &[(Key128, Feasibility)]) -> Vec<u8> {
    let mut e = Enc::new();
    let mut entries: Vec<_> = entries.to_vec();
    entries.sort_unstable_by_key(|(k, _)| *k);
    e.u32(entries.len() as u32);
    for (k, v) in entries {
        e.u64(k.lo);
        e.u64(k.hi);
        e.u8(feas_code(v));
    }
    e.buf
}

fn decode_key_map(d: &mut Dec<'_>) -> Result<Vec<(Key128, Feasibility)>, SnapshotError> {
    let n = d.count(17)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = d.u64()?;
        let hi = d.u64()?;
        let v = feas_from_code(d.u8()?).ok_or_else(|| d.err("invalid feasibility code"))?;
        out.push((Key128::from_parts(lo, hi), v));
    }
    Ok(out)
}

/// Adds the verdict-cache contents as [`tag::VERDICTS`].
pub fn write_verdicts(w: &mut SnapshotWriter, cache: &VerdictCache) {
    w.add(tag::VERDICTS, 0, encode_key_map(&cache.entries()));
}

/// Decodes [`tag::VERDICTS`] into a fresh [`VerdictCache`].
pub fn read_verdicts(snap: &Snapshot) -> Result<VerdictCache, SnapshotError> {
    let payload = snap.section(tag::VERDICTS, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::VERDICTS, 0));
    let entries = decode_key_map(&mut d)?;
    d.done()?;
    let cache = VerdictCache::new();
    for (k, v) in entries {
        cache.insert(k, v);
    }
    Ok(cache)
}

/// Adds the iso-memo contents as [`tag::ISO`].
pub fn write_iso(w: &mut SnapshotWriter, iso: &IsoVerdicts) {
    w.add(tag::ISO, 0, encode_key_map(&iso.entries()));
}

/// Decodes [`tag::ISO`] into raw entries (re-inserted into a rebuilt
/// [`crate::compact::CompactPdg`]'s memo on load).
pub fn read_iso(snap: &Snapshot) -> Result<Vec<(Key128, Feasibility)>, SnapshotError> {
    let payload = snap.section(tag::ISO, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::ISO, 0));
    let entries = decode_key_map(&mut d)?;
    d.done()?;
    Ok(entries)
}

/// Adds one provenance index (`key → sorted function span`) under the
/// given tag ([`tag::PROV_VERDICTS`] or [`tag::PROV_ISO`]).
pub fn write_provenance(w: &mut SnapshotWriter, t: u32, prov: &Provenance) {
    let mut entries = prov.entries();
    entries.sort_unstable_by_key(|(k, _)| *k);
    let mut e = Enc::new();
    e.u32(entries.len() as u32);
    for (k, funcs) in entries {
        e.u64(k.lo);
        e.u64(k.hi);
        e.u32(funcs.len() as u32);
        for f in funcs.iter() {
            e.u32(*f);
        }
    }
    w.add(t, 0, e.buf);
}

/// Decodes a provenance index written by [`write_provenance`].
pub fn read_provenance(snap: &Snapshot, t: u32) -> Result<Provenance, SnapshotError> {
    let payload = snap.section(t, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(t, 0));
    let n = d.count(20)?;
    let prov = Provenance::default();
    for _ in 0..n {
        let lo = d.u64()?;
        let hi = d.u64()?;
        let m = d.count(4)?;
        let mut funcs = Vec::with_capacity(m);
        for _ in 0..m {
            funcs.push(d.u32()?);
        }
        prov.insert_raw(Key128::from_parts(lo, hi), funcs.into_boxed_slice());
    }
    d.done()?;
    Ok(prov)
}

// ---------------------------------------------------------------------------
// Work-item outcome sections
// ---------------------------------------------------------------------------

fn encode_path(e: &mut Enc, path: &DependencePath) {
    e.u32(path.nodes.len() as u32);
    for v in &path.nodes {
        e.u32(v.func.0);
        e.u32(v.var.0);
    }
    e.u32(path.links.len() as u32);
    for l in &path.links {
        match l {
            Link::Local => e.u8(0),
            Link::Enter(s) => {
                e.u8(1);
                e.u32(s.0);
            }
            Link::Exit(s) => {
                e.u8(2);
                e.u32(s.0);
            }
        }
    }
}

fn decode_path(d: &mut Dec<'_>) -> Result<DependencePath, SnapshotError> {
    let nn = d.count(8)?;
    let mut nodes = Vec::with_capacity(nn);
    for _ in 0..nn {
        nodes.push(Vertex {
            func: FuncId(d.u32()?),
            var: VarId(d.u32()?),
        });
    }
    let nl = d.count(1)?;
    let mut links = Vec::with_capacity(nl);
    for _ in 0..nl {
        links.push(match d.u8()? {
            0 => Link::Local,
            1 => Link::Enter(CallSiteId(d.u32()?)),
            2 => Link::Exit(CallSiteId(d.u32()?)),
            t => return Err(d.err(format!("invalid link tag {t}"))),
        });
    }
    if nodes.is_empty() || links.len() + 1 != nodes.len() {
        return Err(d.err(format!(
            "malformed path: {} nodes, {} links",
            nodes.len(),
            links.len()
        )));
    }
    Ok(DependencePath { nodes, links })
}

/// Adds the recorded work-item outcomes as [`tag::OUTCOMES`]. Records
/// are written in sorted `(checker, source)` order so equal outcome sets
/// serialize to identical bytes.
pub fn write_outcomes(w: &mut SnapshotWriter, outcomes: &ItemOutcomes) {
    let mut records: Vec<(&(usize, Vertex), &ItemRecord)> = outcomes.records().collect();
    records.sort_unstable_by_key(|(k, _)| **k);
    let mut e = Enc::new();
    e.u32(records.len() as u32);
    for ((checker, src), rec) in records {
        e.u32(*checker as u32);
        e.u32(src.func.0);
        e.u32(src.var.0);
        e.u64(rec.steps);
        e.u32(rec.verdicts.len() as u32);
        for v in &rec.verdicts {
            match v {
                CandVerdict::Suppressed => e.u8(0),
                CandVerdict::Report(r) => {
                    e.u8(1);
                    e.u32(r.source.func.0);
                    e.u32(r.source.var.0);
                    e.u32(r.sink.func.0);
                    e.u32(r.sink.var.0);
                    e.u8(feas_code(r.verdict));
                    encode_path(&mut e, &r.path);
                }
            }
        }
    }
    w.add(tag::OUTCOMES, 0, e.buf);
}

/// Decodes [`tag::OUTCOMES`] back into an [`ItemOutcomes`].
pub fn read_outcomes(snap: &Snapshot) -> Result<ItemOutcomes, SnapshotError> {
    let payload = snap.section(tag::OUTCOMES, 0)?;
    let mut d = Dec::new(&payload, snap.offset_of(tag::OUTCOMES, 0));
    let n = d.count(24)?;
    let mut outcomes = ItemOutcomes::default();
    for _ in 0..n {
        let checker = d.u32()? as usize;
        let src = Vertex {
            func: FuncId(d.u32()?),
            var: VarId(d.u32()?),
        };
        let steps = d.u64()?;
        let nv = d.count(1)?;
        let mut verdicts = Vec::with_capacity(nv);
        for _ in 0..nv {
            verdicts.push(match d.u8()? {
                0 => CandVerdict::Suppressed,
                1 => {
                    let source = Vertex {
                        func: FuncId(d.u32()?),
                        var: VarId(d.u32()?),
                    };
                    let sink = Vertex {
                        func: FuncId(d.u32()?),
                        var: VarId(d.u32()?),
                    };
                    let verdict =
                        feas_from_code(d.u8()?).ok_or_else(|| d.err("invalid verdict code"))?;
                    let path = decode_path(&mut d)?;
                    CandVerdict::Report(crate::engine::BugReport {
                        source,
                        sink,
                        verdict,
                        path,
                    })
                }
                t => return Err(d.err(format!("invalid verdict tag {t}"))),
            });
        }
        outcomes.insert_record((checker, src), ItemRecord { verdicts, steps });
    }
    d.done()?;
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    const SRC: &str = "extern fn deref(p);\n\
        fn callee(x) { let b = x & 3; return b; }\n\
        fn caller(a) { let v = callee(a); let q = null; let r = 1; if (v > 0) { r = q; } deref(r); return 0; }";

    fn program() -> Program {
        compile(SRC, CompileOptions::default()).expect("compile")
    }

    fn snapshot_bytes(program: &Program) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        write_program(&mut w, program);
        let facts = ProgramFacts::compute(program);
        write_facts(&mut w, program, &facts);
        let pdg = Pdg::build(program);
        write_pdg(&mut w, program, &pdg);
        w.finish()
    }

    /// Structural equality witness for programs (Program has no
    /// PartialEq; symbols are compared through their strings).
    fn assert_same_program(a: &Program, b: &Program) {
        assert_eq!(a.functions.len(), b.functions.len());
        assert_eq!(a.call_sites.len(), b.call_sites.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(a.name(fa.name), b.name(fb.name));
            assert_eq!(fa.id, fb.id);
            assert_eq!(fa.params, fb.params);
            assert_eq!(fa.ret, fb.ret);
            assert_eq!(fa.is_extern, fb.is_extern);
            assert_eq!(fa.defs.len(), fb.defs.len());
            for (da, db) in fa.defs.iter().zip(&fb.defs) {
                assert_eq!(da.var, db.var);
                assert_eq!(da.kind, db.kind);
                assert_eq!(da.guard, db.guard);
                assert_eq!(a.name(da.name), b.name(db.name));
            }
        }
        assert_eq!(a.call_sites, b.call_sites);
    }

    #[test]
    fn program_round_trips() {
        let p = program();
        let snap = open_bytes(snapshot_bytes(&p)).expect("open");
        let q = read_program(&snap).expect("read program");
        assert_same_program(&p, &q);
        let errs = fusion_ir::validate::check_program(&q);
        assert!(errs.is_empty(), "round-tripped program validates: {errs:?}");
    }

    #[test]
    fn facts_and_pdg_round_trip() {
        let p = program();
        let snap = open_bytes(snapshot_bytes(&p)).expect("open");
        let facts = ProgramFacts::compute(&p);
        let got = read_facts(&snap, &p).expect("read facts");
        for f in &p.functions {
            assert_eq!(facts.function(f.id), got.function(f.id));
            assert_eq!(facts.ret_fact(f.id), got.ret_fact(f.id));
        }
        let pdg = Pdg::build(&p);
        for f in &p.functions {
            let uses = read_func_pdg(&snap, f.id.0).expect("read pdg");
            assert_eq!(uses.len(), f.defs.len());
            for def in &f.defs {
                assert_eq!(pdg.uses(f.id, def.var), &uses[def.var.index()][..]);
            }
        }
    }

    #[test]
    fn callgraph_section_matches_program() {
        let p = program();
        let snap = open_bytes(snapshot_bytes(&p)).expect("open");
        let info = read_callgraph(&snap).expect("read callgraph");
        let want = CallGraphInfo::of_program(&p);
        assert_eq!(info.is_extern, want.is_extern);
        assert_eq!(info.def_counts, want.def_counts);
        assert_eq!(info.callees, want.callees);
    }

    #[test]
    fn lazy_reads_are_partial() {
        let p = program();
        let bytes = snapshot_bytes(&p);
        let total = bytes.len() as u64;
        let snap = open_bytes(bytes).expect("open");
        let _ = read_callgraph(&snap).expect("callgraph");
        let _ = read_function(&snap, 1).expect("one function");
        assert!(
            snap.bytes_read() < total,
            "lazy reader fetched {} of {} bytes",
            snap.bytes_read(),
            total
        );
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut bytes = snapshot_bytes(&program());
        bytes[0] = b'X';
        let err = open_bytes(bytes).expect_err("bad magic must fail");
        assert_eq!(err.offset, 0);
        assert!(err.what.contains("magic"), "{err}");
    }

    #[test]
    fn version_skew_is_an_error() {
        let mut bytes = snapshot_bytes(&program());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = open_bytes(bytes).expect_err("version skew must fail");
        assert_eq!(err.offset, 4);
        assert!(err.what.contains("version 99"), "{err}");
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let bytes = snapshot_bytes(&program());
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF;
        let snap = open_bytes(corrupted).expect("header still parses");
        // Some section's payload contains the flipped byte; reading every
        // section must surface exactly one checksum error, never a panic.
        let mut failures = 0;
        let (n, _) = read_meta(&snap).map_or((3, 0), |(n, s)| (n, s));
        for i in 0..n as u32 {
            if snap.has(tag::FUNC, i) && snap.section(tag::FUNC, i).is_err() {
                failures += 1;
            }
            if snap.has(tag::FACTS, i) && snap.section(tag::FACTS, i).is_err() {
                failures += 1;
            }
            if snap.has(tag::PDG, i) && snap.section(tag::PDG, i).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 1, "exactly the corrupted section fails");
    }

    #[test]
    fn truncated_file_is_an_error() {
        let bytes = snapshot_bytes(&program());
        for cut in [0usize, 7, 11, 40, bytes.len() / 2] {
            let truncated = bytes[..cut.min(bytes.len())].to_vec();
            match open_bytes(truncated) {
                Err(_) => {}
                Ok(snap) => {
                    // Table may parse when the cut only removed payloads;
                    // then every out-of-range section read must error.
                    assert!(
                        read_program(&snap).is_err(),
                        "cut at {cut} silently decoded"
                    );
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let p = program();
        let dir = std::env::temp_dir().join(format!("fsnp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prog.fsnp");
        let mut w = SnapshotWriter::new();
        write_program(&mut w, &p);
        let written = w.write_to(&path).expect("write");
        assert!(written > 0);
        let snap = open_file(&path).expect("open file");
        let q = read_program(&snap).expect("read");
        assert_same_program(&p, &q);
        assert!(snap.bytes_read() <= written);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! SMT-LIB 2 export.
//!
//! Emits any boolean term as a standard `QF_BV` script so conditions built
//! by this crate can be cross-checked with an external solver (Z3, cvc5,
//! Bitwuzla, ...). Useful both for downstream users who want a second
//! opinion and for debugging the reproduction against the solver the paper
//! used.

use crate::term::{BvOp, BvPred, Sort, TermId, TermKind, TermPool};
use std::collections::HashMap;
use std::fmt::Write as _;

fn sort_smt(sort: Sort) -> String {
    match sort {
        Sort::Bool => "Bool".to_owned(),
        Sort::Bv(w) => format!("(_ BitVec {w})"),
    }
}

fn op_smt(op: BvOp) -> &'static str {
    match op {
        BvOp::Add => "bvadd",
        BvOp::Sub => "bvsub",
        BvOp::Mul => "bvmul",
        BvOp::Udiv => "bvudiv",
        BvOp::Urem => "bvurem",
        BvOp::And => "bvand",
        BvOp::Or => "bvor",
        BvOp::Xor => "bvxor",
        BvOp::Shl => "bvshl",
        BvOp::Lshr => "bvlshr",
        BvOp::Ashr => "bvashr",
    }
}

fn pred_smt(p: BvPred) -> &'static str {
    match p {
        BvPred::Ult => "bvult",
        BvPred::Ule => "bvule",
        BvPred::Slt => "bvslt",
        BvPred::Sle => "bvsle",
    }
}

/// SMT-LIB identifiers: quote anything beyond `[A-Za-z0-9_]` with `|...|`.
fn ident(name: &str) -> String {
    if !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
        && !name.starts_with(|c: char| c.is_ascii_digit())
    {
        name.to_owned()
    } else {
        format!("|{name}|")
    }
}

/// Emits `formula` as a complete SMT-LIB 2 script: `set-logic QF_BV`,
/// sorted declarations for every free variable, named `let`-bindings for
/// shared subterms (preserving the DAG's structural sharing), one
/// `assert`, and `check-sat`.
///
/// # Panics
///
/// Panics if `formula` is not boolean-sorted.
pub fn to_smtlib2(pool: &TermPool, formula: TermId) -> String {
    assert_eq!(
        pool.sort(formula),
        Sort::Bool,
        "to_smtlib2: formula must be Bool"
    );
    let mut out = String::from("(set-logic QF_BV)\n");
    let mut vars = pool.free_vars(formula);
    vars.sort_unstable();
    for v in vars {
        let _ = writeln!(
            out,
            "(declare-const {} {})",
            ident(pool.var_name(v)),
            sort_smt(pool.var_sort(v))
        );
    }
    // Count references to decide which nodes earn a let binding.
    let mut refs: HashMap<TermId, u32> = HashMap::new();
    let mut stack = vec![formula];
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        *refs.entry(t).or_insert(0) += 1;
        if seen.insert(t) {
            stack.extend(pool.children(t));
        }
    }
    fn expr(pool: &TermPool, t: TermId, bound: &HashMap<TermId, String>) -> String {
        if let Some(name) = bound.get(&t) {
            return name.clone();
        }
        match pool.kind(t) {
            TermKind::BoolConst(b) => b.to_string(),
            TermKind::BvConst { width, value } => {
                format!("(_ bv{value} {width})")
            }
            TermKind::Var(v) => ident(pool.var_name(*v)),
            TermKind::Not(x) => format!("(not {})", expr(pool, *x, bound)),
            TermKind::And(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| expr(pool, x, bound)).collect();
                format!("(and {})", parts.join(" "))
            }
            TermKind::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| expr(pool, x, bound)).collect();
                format!("(or {})", parts.join(" "))
            }
            TermKind::Eq(a, b) => {
                format!("(= {} {})", expr(pool, *a, bound), expr(pool, *b, bound))
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => format!(
                "(ite {} {} {})",
                expr(pool, *cond, bound),
                expr(pool, *then_t, bound),
                expr(pool, *else_t, bound)
            ),
            TermKind::Bv(op, a, b) => format!(
                "({} {} {})",
                op_smt(*op),
                expr(pool, *a, bound),
                expr(pool, *b, bound)
            ),
            TermKind::Pred(p, a, b) => format!(
                "({} {} {})",
                pred_smt(*p),
                expr(pool, *a, bound),
                expr(pool, *b, bound)
            ),
        }
    }
    // Bind shared non-leaf nodes bottom-up (post-order over the DAG) so a
    // cloned-condition script stays linear in DAG size.
    let mut order: Vec<TermId> = Vec::new();
    let mut seen2 = std::collections::HashSet::new();
    fn postorder(
        pool: &TermPool,
        t: TermId,
        seen: &mut std::collections::HashSet<TermId>,
        out: &mut Vec<TermId>,
    ) {
        if !seen.insert(t) {
            return;
        }
        for c in pool.children(t) {
            postorder(pool, c, seen, out);
        }
        out.push(t);
    }
    postorder(pool, formula, &mut seen2, &mut order);
    let mut bound: HashMap<TermId, String> = HashMap::new();
    let mut lets: Vec<(String, String)> = Vec::new();
    for &t in &order {
        let shared = refs.get(&t).copied().unwrap_or(0) > 1;
        let leafy = matches!(
            pool.kind(t),
            TermKind::BoolConst(_) | TermKind::BvConst { .. } | TermKind::Var(_)
        );
        if shared && !leafy && t != formula {
            let name = format!("?n{}", t.0);
            let body = expr(pool, t, &bound);
            lets.push((name.clone(), body));
            bound.insert(t, name);
        }
    }
    let root = expr(pool, formula, &bound);
    if lets.is_empty() {
        let _ = writeln!(out, "(assert {root})");
    } else {
        let mut body = root;
        for (name, def) in lets.into_iter().rev() {
            body = format!("(let (({name} {def})) {body})");
        }
        let _ = writeln!(out, "(assert {body})");
    }
    out.push_str("(check-sat)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_declarations_and_assert() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(8));
        let b = p.var("b", Sort::Bool);
        let c = p.bv_const(7, 32);
        let e1 = p.eq(x, c);
        let z = p.bv_const(3, 8);
        let e2 = p.pred(BvPred::Ult, y, z);
        let f = p.and(&[e1, e2, b]);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("(set-logic QF_BV)"));
        assert!(s.contains("(declare-const x (_ BitVec 32))"));
        assert!(s.contains("(declare-const y (_ BitVec 8))"));
        assert!(s.contains("(declare-const b Bool)"));
        assert!(s.contains("(_ bv7 32)"));
        assert!(s.contains("(bvult y (_ bv3 8))"));
        assert!(s.contains("(check-sat)"));
    }

    #[test]
    fn shared_subterms_become_lets() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let one = p.bv_const(1, 16);
        let inc = p.bv(BvOp::Add, x, one); // shared
        let a = p.bv(BvOp::Mul, inc, inc);
        let two = p.bv_const(2, 16);
        let f = p.eq(a, two);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("(let ((?n"), "{s}");
    }

    #[test]
    fn odd_names_are_quoted() {
        let mut p = TermPool::new();
        let v = p.var("f0@3:v7", Sort::Bv(32));
        let c = p.bv_const(0, 32);
        let f = p.eq(v, c);
        let s = to_smtlib2(&p, f);
        assert!(s.contains("|f0@3:v7|"), "{s}");
    }

    #[test]
    fn operators_cover_the_theory() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let mut parts = Vec::new();
        for op in [
            BvOp::Add,
            BvOp::Sub,
            BvOp::Mul,
            BvOp::Udiv,
            BvOp::Urem,
            BvOp::And,
            BvOp::Or,
            BvOp::Xor,
            BvOp::Shl,
            BvOp::Lshr,
            BvOp::Ashr,
        ] {
            let t = p.bv(op, x, y);
            parts.push(p.ne(t, x));
        }
        let f = p.and(&parts);
        let s = to_smtlib2(&p, f);
        for name in [
            "bvadd", "bvsub", "bvmul", "bvudiv", "bvurem", "bvand", "bvor", "bvxor", "bvshl",
            "bvlshr", "bvashr",
        ] {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}

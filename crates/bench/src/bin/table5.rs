//! Table 5 — Fusion vs the Infer-like compositional analyzer on the
//! industrial-sized subjects: cost, reports, and true/false positives
//! against the seeded ground truth.

use fusion::checkers::{CheckKind, Checker};
use fusion::graph_solver::FusionSolver;
use fusion_baselines::{analyze_inferlike, InferOptions};
use fusion_bench::{banner, build_subject, default_budget, run_checker, scale_from_env};
use fusion_workloads::{large_subjects, score};

fn main() {
    banner(
        "Table 5: comparing Fusion to the Infer-like analyzer (null exceptions)",
        "TP/FP measured exactly against seeded ground truth",
    );
    let scale = scale_from_env();
    let checker = Checker::null_deref();
    println!(
        "{:>2} {:>8} | {:>10} {:>10} {:>7} {:>4} {:>4} {:>5} | {:>10} {:>10} {:>7} {:>4} {:>4} {:>5}",
        "ID", "program", "fus-mem", "fus-time", "#rep", "#TP", "#FP", "miss", "inf-mem", "inf-time", "#rep", "#TP", "#FP", "miss"
    );
    let mut totals = [0usize; 6]; // fus rep/tp/fp, inf rep/tp/fp
    for spec in large_subjects() {
        let subject = build_subject(spec, scale);
        let mut fusion_engine = FusionSolver::new(default_budget());
        let fusion_run = run_checker(&subject, &checker, &mut fusion_engine);
        let fusion_score = score(
            &subject.program,
            CheckKind::NullDeref,
            &subject.bugs,
            &fusion_run.reports,
        );
        let infer_run = analyze_inferlike(
            &subject.program,
            &subject.pdg,
            &checker,
            &InferOptions::default(),
        );
        let infer_score = score(
            &subject.program,
            CheckKind::NullDeref,
            &subject.bugs,
            &infer_run.reports,
        );
        println!(
            "{:>2} {:>8} | {:>9}K {:>8.1}ms {:>7} {:>4} {:>4} {:>5} | {:>9}K {:>8.1}ms {:>7} {:>4} {:>4} {:>5}",
            spec.id,
            spec.name,
            fusion_run.peak_memory / 1024,
            fusion_run.total_time().as_secs_f64() * 1e3,
            fusion_run.reports.len(),
            fusion_score.true_positives,
            fusion_score.false_positives,
            fusion_score.missed,
            infer_run.peak_memory / 1024,
            infer_run.total_time().as_secs_f64() * 1e3,
            infer_run.reports.len(),
            infer_score.true_positives,
            infer_score.false_positives,
            infer_score.missed,
        );
        totals[0] += fusion_run.reports.len();
        totals[1] += fusion_score.true_positives;
        totals[2] += fusion_score.false_positives;
        totals[3] += infer_run.reports.len();
        totals[4] += infer_score.true_positives;
        totals[5] += infer_score.false_positives;
    }
    let rate = |fp: usize, rep: usize| {
        if rep == 0 {
            0.0
        } else {
            100.0 * fp as f64 / rep as f64
        }
    };
    println!(
        "\nFP rate: fusion {:.1}% vs infer-like {:.1}% (paper: 29.2% vs 66.1%)",
        rate(totals[2], totals[0]),
        rate(totals[5], totals[3]),
    );
    println!("expected shape: infer-like reports more, finds fewer TPs (deep flows missed),");
    println!("and every infeasible seed it reports is a false positive.");
}

//! Quick paths: entry→exit value summaries on the dependence graph.
//!
//! §2 of the paper: "we can establish a quick path from the vertex `y=2x`
//! to the vertex `return z`. The quick path allows the same propagation
//! from the variable `b` to the branch condition without going through the
//! function `bar`." §3.2.3 uses the same idea for inter-procedural
//! preprocessing (Fig. 9): constant and affine return values let the solver
//! delete call/return parenthesis labels without cloning the callee.
//!
//! A [`RetSummary`] states what a function's return value is as a function
//! of its parameters, computed once per function (memoized — never per call
//! site) by value propagation over the gated SSA graph. Because the IR is
//! pure and total, these equalities hold unconditionally.
//!
//! Since the introduction of [`crate::absint`] the summaries are no longer
//! a standalone traversal: they are the Const/Affine *projection* of the
//! abstract-interpretation product domain
//! ([`crate::absint::ProgramFacts::ret_summaries`]), so there is exactly
//! one value-propagation engine in the analysis.

use fusion_ir::ssa::Program;

/// What a function returns, as seen through the quick path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetSummary {
    /// The return value is this constant.
    Const(u32),
    /// `ret = mul · param[index] + add` (wrapping 32-bit arithmetic).
    /// `mul = 1, add = 0` is the identity.
    Affine {
        /// Parameter position.
        index: usize,
        /// Multiplier.
        mul: u32,
        /// Offset.
        add: u32,
    },
    /// No quick path: the callee must be visited (cloned) to reason about
    /// its return value.
    Opaque,
}

/// Computes the return summary of every function, bottom-up over the
/// (acyclic, post-unrolling) call graph.
///
/// This is the Const/Affine projection of the abstract-interpretation
/// product domain — see [`crate::absint::ProgramFacts::ret_summaries`].
/// The shape algebra of the domain is byte-compatible with the historical
/// per-definition propagation loop this function used to run.
pub fn ret_summaries(program: &Program) -> Vec<RetSummary> {
    crate::absint::ProgramFacts::compute(program).ret_summaries()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    fn summaries(src: &str) -> (Program, Vec<RetSummary>) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let s = ret_summaries(&p);
        (p, s)
    }

    fn of<'a>(p: &Program, s: &'a [RetSummary], name: &str) -> &'a RetSummary {
        &s[p.func_by_name(name).unwrap().id.index()]
    }

    #[test]
    fn paper_bar_is_affine_times_two() {
        let (p, s) = summaries("fn bar(x) { let y = x * 2; let z = y; return z; }");
        assert_eq!(
            *of(&p, &s, "bar"),
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 0
            }
        );
    }

    #[test]
    fn identity_and_const() {
        let (p, s) = summaries("fn id(x) { return x; } fn seven() { return 7; }");
        assert_eq!(
            *of(&p, &s, "id"),
            RetSummary::Affine {
                index: 0,
                mul: 1,
                add: 0
            }
        );
        assert_eq!(*of(&p, &s, "seven"), RetSummary::Const(7));
    }

    #[test]
    fn composition_through_calls() {
        // h(x) = g(f(x)) = 2(x + 1) + 3 = 2x + 5.
        let (p, s) = summaries(
            "fn f(x) { return x + 1; }\n\
             fn g(x) { return x * 2 + 3; }\n\
             fn h(x) { return g(f(x)); }",
        );
        assert_eq!(
            *of(&p, &s, "h"),
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 5
            }
        );
    }

    #[test]
    fn branching_is_opaque_unless_arms_agree() {
        let (p, s) = summaries(
            "fn pick(x) { if (x > 0) { return x + 1; } return x; }\n\
             fn same(x) { let r = 5; if (x > 0) { r = 5; } return r; }\n\
             fn early(x) { if (x > 0) { return 5; } return 5; }",
        );
        assert_eq!(*of(&p, &s, "pick"), RetSummary::Opaque);
        // Both merge arms agree: the summary sees through the ite.
        assert_eq!(*of(&p, &s, "same"), RetSummary::Const(5));
        // Early returns thread `__ret_val` (initially 0) through the merge
        // chain, so the value summary is conservatively opaque even though
        // the function always returns 5.
        assert_eq!(*of(&p, &s, "early"), RetSummary::Opaque);
    }

    #[test]
    fn extern_and_extern_users_are_opaque() {
        let (p, s) = summaries("extern fn lib(x); fn f(x) { return lib(x); }");
        assert_eq!(*of(&p, &s, "lib"), RetSummary::Opaque);
        assert_eq!(*of(&p, &s, "f"), RetSummary::Opaque);
    }

    #[test]
    fn two_param_mix_is_opaque() {
        let (p, s) = summaries("fn f(x, y) { return x + y; }");
        assert_eq!(*of(&p, &s, "f"), RetSummary::Opaque);
    }

    #[test]
    fn shl_by_const_is_affine() {
        let (p, s) = summaries("fn f(x) { return (x << 3) + 1; }");
        assert_eq!(
            *of(&p, &s, "f"),
            RetSummary::Affine {
                index: 0,
                mul: 8,
                add: 1
            }
        );
    }

    #[test]
    fn summaries_validate_dynamically() {
        // Cross-check against the interpreter on a few inputs.
        let src = "fn f(x) { return x + 1; }\n\
                   fn g(x) { return x * 2 + 3; }\n\
                   fn h(x) { return g(f(x)); }";
        let (p, s) = summaries(src);
        let h = p.func_by_name("h").unwrap();
        let RetSummary::Affine { index, mul, add } = of(&p, &s, "h") else {
            panic!("expected affine")
        };
        for x in [0u32, 1, 7, u32::MAX] {
            let (ev, _) = fusion_ir::interp::eval_core(&p, h.id, &[x], 100_000).unwrap();
            let args = [x];
            let want = mul.wrapping_mul(args[*index]).wrapping_add(*add);
            assert_eq!(ev.ret, want, "x = {x}");
        }
    }
}

//! `compact_bench` — the PDG-compaction perf harness
//! (`BENCH_compact.json`).
//!
//! One comparison over a synthetic corpus: the fused multi-client scan
//! **with** pre-discovery graph compaction (`AnalysisOptions::compact =
//! true`, the default) against the same scan **without** it (the CLI's
//! `--no-compact`). Both measured sides run the sequential pipeline over
//! the same program, and their per-checker reports are asserted
//! byte-identical against an uncompacted sequential reference —
//! compaction removes work, never findings. A streaming compacted run
//! is checked against the same reference so the parallel drivers stay
//! honest too.
//!
//! The corpus mixes three populations, one per compaction layer:
//!
//! * **dead flows** — source facts whose forward cone never reaches any
//!   checker sink; frontier pruning deletes them before discovery walks
//!   a single step;
//! * **identity corridors** — single-entry/single-exit callees
//!   (`id(v) { return v; }`) whose Enter→Local→Exit summary chains
//!   collapse into composite edges replayed at zero step cost;
//! * **isomorphic families** — byte-identical function bodies under
//!   different names; their dependence-path fragments share one solver
//!   verdict through the content-hash memo instead of re-querying.
//!
//! Output: `BENCH_compact.json` in the working directory (override with
//! `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process exits
//! non-zero unless the compacted run took strictly fewer discovery
//! steps, issued strictly fewer solver queries, and finished within
//! 100% of the uncompacted wall with byte-identical reports — the CI
//! regression gate for the compaction layer.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_streaming_with_cache, analyze_multi_with_cache, AnalysisOptions,
    FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count the streaming identity check runs at.
const THREADS: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;

/// Synthetic subject with dead flows, identity corridors and
/// isomorphic function families for all three default checkers.
fn compact_corpus(funcs: usize, per: usize) -> String {
    let mut s = String::from(
        "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
         extern fn getpass(); extern fn sendmsg(x);\n",
    );
    for f in 0..funcs {
        // Identity corridor: collapses to one composite summary edge.
        let _ = writeln!(s, "fn id{f}(v) {{ return v; }}");
        // Dead helper: real def-use structure, no reachable sink — the
        // whole cone is pruned before discovery starts.
        let _ = writeln!(
            s,
            "fn dead{f}(y) {{ let z = y + 1; let w = z * 2; \
             let v = w + z; return v; }}"
        );
        // Isomorphic family: `per` byte-identical bodies under fresh
        // names. Their exact cache keys differ (names differ) but their
        // iso keys coincide, so one solver verdict serves the family.
        for k in 0..per {
            let _ = writeln!(
                s,
                "fn iso{f}x{k}(x) {{ let q = null; let r = 1; \
                 if (x > 0) {{ r = q; }} deref(r); return 0; }}"
            );
        }
        // Driver: routes a null fact through the corridor, feeds the
        // dead helper, and exercises the other two checkers so every
        // client of the fused pass sees this function.
        let _ = writeln!(s, "fn drive{f}(c) {{");
        let _ = writeln!(s, "  let q = null; let t = gets(); let p = getpass();");
        let _ = writeln!(s, "  let u = id{f}(q); let n = dead{f}(c);");
        let _ = writeln!(s, "  if (c > n) {{ deref(u); }}");
        let _ = writeln!(s, "  let a = 1; if (c > 1) {{ a = t; }} fopen(a);");
        let _ = writeln!(s, "  let b = 1; if (c > 2) {{ b = p * 2; }} sendmsg(b);");
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn breakdown_keys(run: &MultiAnalysisRun) -> Vec<Vec<ReportKey>> {
    run.checkers
        .iter()
        .map(|b| {
            b.reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect()
        })
        .collect()
}

/// One measured side: best wall plus the counters of the best iteration.
#[derive(Default)]
struct Side {
    wall_us: u128,
    steps: u64,
    queries: usize,
    vertices_pruned: u64,
    edges_pruned: u64,
    chains_collapsed: u64,
    iso_hits: u64,
}

fn measure(
    program: &fusion_ir::Program,
    pdg: &Pdg,
    set: &CheckerSet,
    compact: bool,
    want: &[Vec<ReportKey>],
    identical: &mut bool,
) -> Side {
    let budget = default_budget();
    let mut best = Side {
        wall_us: u128::MAX,
        ..Default::default()
    };
    for _ in 0..ITERS {
        let cache = VerdictCache::new();
        let mut engine = FusionSolver::new(budget);
        let mut opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
        opts.compact = compact;
        let t = Instant::now();
        let run = analyze_multi_with_cache(program, pdg, set, &mut engine, &opts, Some(&cache));
        let wall = t.elapsed().as_micros();
        if breakdown_keys(&run) != want {
            *identical = false;
        }
        if wall < best.wall_us {
            best = Side {
                wall_us: wall,
                steps: run.stages.discovery_steps,
                queries: run.checkers.iter().map(|b| b.queries).sum(),
                vertices_pruned: run.stages.vertices_pruned,
                edges_pruned: run.stages.edges_pruned,
                chains_collapsed: run.stages.chains_collapsed,
                iso_hits: run.stages.iso_hits,
            };
        }
    }
    best
}

fn main() {
    banner(
        "compact_bench: PDG compaction vs --no-compact",
        "same corpus, sequential; reports asserted byte-identical",
    );
    let src = compact_corpus(5, 6);
    let program = compile(&src, CompileOptions::default()).expect("corpus compiles");
    let pdg = Pdg::build(&program);
    let set = CheckerSet::all();

    // Reference transcript: sequential, compaction off — the plain
    // discovery the compacted runs must reproduce byte-for-byte.
    let seq_cache = VerdictCache::new();
    let mut seq_engine = FusionSolver::new(default_budget());
    let mut seq_opts = AnalysisOptions::new();
    seq_opts.compact = false;
    let reference = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut seq_engine,
        &seq_opts,
        Some(&seq_cache),
    );
    let want = breakdown_keys(&reference);
    assert!(
        want.iter().all(|k| !k.is_empty()),
        "every checker must report"
    );

    let mut identical = true;
    let off = measure(&program, &pdg, &set, false, &want, &mut identical);
    let on = measure(&program, &pdg, &set, true, &want, &mut identical);

    // The parallel drivers consume the same compacted graph; one
    // streaming run keeps them pinned to the sequential reference.
    let make = factory();
    let stream_cache = VerdictCache::new();
    let mut stream_opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
    stream_opts.compact = true;
    let streamed = analyze_multi_streaming_with_cache(
        &program,
        &pdg,
        &set,
        &make,
        THREADS,
        &stream_opts,
        Some(&stream_cache),
    );
    if breakdown_keys(&streamed) != want {
        identical = false;
    }
    assert!(
        identical,
        "compaction on/off reports must be byte-identical to the sequential reference"
    );

    let pct = if off.wall_us == 0 {
        0.0
    } else {
        100.0 * on.wall_us as f64 / off.wall_us as f64
    };

    println!("--------------------------------------------------------------");
    println!(
        "wall:     off {:>9.3}ms   on {:>9.3}ms   ({pct:.1}% of uncompacted)",
        off.wall_us as f64 / 1000.0,
        on.wall_us as f64 / 1000.0,
    );
    println!(
        "steps:    off {} -> on {}   ({} vertex(es) pruned, {} edge(s) pruned)",
        off.steps, on.steps, on.vertices_pruned, on.edges_pruned
    );
    println!(
        "queries:  off {} -> on {}   ({} iso hit(s), {} chain(s) collapsed)",
        off.queries, on.queries, on.iso_hits, on.chains_collapsed
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": {THREADS},\n  \"iters\": {ITERS},\n  \
         \"uncompacted_wall_us\": {},\n  \"compacted_wall_us\": {},\n  \
         \"compacted_pct_of_uncompacted\": {pct:.2},\n  \
         \"uncompacted_steps\": {},\n  \"compacted_steps\": {},\n  \
         \"uncompacted_queries\": {},\n  \"compacted_queries\": {},\n  \
         \"vertices_pruned\": {},\n  \"edges_pruned\": {},\n  \
         \"chains_collapsed\": {},\n  \"iso_hits\": {},\n  \
         \"reports_identical\": {identical}\n}}\n",
        scale_from_env(),
        off.wall_us,
        on.wall_us,
        off.steps,
        on.steps,
        off.queries,
        on.queries,
        on.vertices_pruned,
        on.edges_pruned,
        on.chains_collapsed,
        on.iso_hits,
    );
    report::write("BENCH_compact.json", &json);

    // CI gates: compaction must avoid real work — strictly fewer
    // discovery steps, strictly fewer solver queries, and no wall
    // regression (≤ 100% of the uncompacted run).
    let gate = report::Gate::from_env();
    gate.require(on.steps < off.steps, || {
        format!(
            "compacted run took {} discovery steps, uncompacted took {}",
            on.steps, off.steps
        )
    });
    gate.require(on.queries < off.queries, || {
        format!(
            "compacted run issued {} queries, uncompacted issued {}",
            on.queries, off.queries
        )
    });
    gate.require(on.wall_us <= off.wall_us, || {
        format!(
            "compacted wall {}us exceeds uncompacted wall {}us",
            on.wall_us, off.wall_us
        )
    });
    gate.pass(
        "compaction took fewer steps, issued fewer queries, \
         and did not regress wall",
    );
}

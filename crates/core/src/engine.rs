//! The analysis driver: propagate facts sparsely, then decide feasibility.
//!
//! This is the outer loop of Algorithm 5: sparse propagation collects Π
//! (with **no** conditions), and a pluggable [`FeasibilityEngine`] answers
//! `ir_based_smt_solve(Π)`. Engines implement the fused designs of this
//! crate or the conventional baselines of `fusion-baselines`; the driver,
//! reports and accounting are shared so comparisons are apples-to-apples.

use crate::cache::{CacheStats, VerdictCache};
use crate::checkers::Checker;
use crate::memory::{run_accounting, MemoryAccountant, BYTES_PER_DEF};
use crate::propagate::{discover, Candidate, PropagateOptions};
use fusion_ir::ssa::Program;
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The verdict on one path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Some execution takes the paths: a real flow.
    Feasible,
    /// No execution can take the paths.
    Infeasible,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Everything a feasibility query reports back.
#[derive(Debug, Clone, Copy)]
pub struct CheckOutcome {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Wall-clock time of the query.
    pub duration: Duration,
    /// DAG node count of the condition the engine built (0 if none).
    pub condition_nodes: u64,
    /// `(context, function)` clones materialized.
    pub instances: usize,
    /// Whether preprocessing alone decided the query.
    pub preprocess_decided: bool,
}

/// A per-query record kept for the Fig. 11 scatter plot.
#[derive(Debug, Clone, Copy)]
pub struct SolveRecord {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Query duration.
    pub duration: Duration,
    /// Whether preprocessing decided it.
    pub preprocess_decided: bool,
    /// Condition size (DAG nodes).
    pub condition_nodes: u64,
}

impl SolveRecord {
    /// Extracts the record from an outcome.
    pub fn from_outcome(o: &CheckOutcome) -> SolveRecord {
        SolveRecord {
            feasibility: o.feasibility,
            duration: o.duration,
            preprocess_decided: o.preprocess_decided,
            condition_nodes: o.condition_nodes,
        }
    }
}

/// A path-feasibility decision procedure — the pluggable half of the fused
/// design. Implementations must not require the caller to compute any
/// condition: they receive the dependence paths and the graph only.
pub trait FeasibilityEngine {
    /// A short identifier for tables.
    fn name(&self) -> &'static str;

    /// Decides whether the conjunction of the given paths' conditions is
    /// satisfiable (`⋀_{π ∈ Π} φ_π` of Algorithm 2).
    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome;

    /// Announces a *slice-group* boundary: the driver is about to issue a
    /// batch of related queries (same sink function, key `group`). Engines
    /// that retain per-epoch state (pools, sessions) may use this point to
    /// bound it; verdicts must not depend on where boundaries fall. The
    /// default does nothing.
    fn begin_group(&mut self, _group: u64) {}

    /// The engine's memory accountant.
    fn memory(&self) -> &MemoryAccountant;

    /// Per-query records collected so far.
    fn records(&self) -> &[SolveRecord];
}

/// One reported bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The fact's origin.
    pub source: Vertex,
    /// The sink statement.
    pub sink: Vertex,
    /// The verdict that triggered the report ([`Feasibility::Feasible`] or,
    /// conservatively, [`Feasibility::Unknown`]).
    pub verdict: Feasibility,
    /// The witnessing (or undecided) path.
    pub path: DependencePath,
}

/// Aggregate results of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Engine name. Sequential runs use the engine's own name; parallel
    /// runs keep it and suffix the thread count (e.g. `"fusion×4"`).
    pub engine: String,
    /// Bug reports (feasible or undecided candidates).
    pub reports: Vec<BugReport>,
    /// Candidates whose every path was proven infeasible.
    pub suppressed: usize,
    /// Total candidates discovered by propagation.
    pub candidates: usize,
    /// Feasibility queries actually issued to an engine (cache hits are
    /// counted in [`AnalysisRun::cache`], not here).
    pub queries: usize,
    /// Wall-clock duration: propagation phase.
    pub propagate_time: Duration,
    /// Wall-clock duration: solving phase.
    pub solve_time: Duration,
    /// Peak tracked memory, bytes (all categories).
    pub peak_memory: u64,
    /// Verdict-cache traffic attributable to this run (all zeros when the
    /// run was uncached).
    pub cache: CacheStats,
}

impl AnalysisRun {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.solve_time
    }
}

/// Configuration of [`analyze`] and [`analyze_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Propagation limits.
    pub propagate: PropagateOptions,
    /// Whether the drivers memoize path verdicts in a [`VerdictCache`]
    /// (on by default). [`analyze`]/[`analyze_parallel`] allocate a
    /// run-local cache; use the `*_with_cache` variants to share one
    /// cache across runs or checkers.
    pub use_cache: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            propagate: PropagateOptions::default(),
            use_cache: true,
        }
    }
}

impl AnalysisOptions {
    /// Default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Default options with verdict caching disabled.
    pub fn without_cache() -> Self {
        Self {
            use_cache: false,
            ..Self::default()
        }
    }
}

/// The outcome for one candidate: either all paths were proven
/// infeasible (suppressed) or a report was produced.
enum CandVerdict {
    Suppressed,
    Report(BugReport),
}

/// Groups candidate indices by sink function — the slice-group batching
/// unit. Candidates against the same sink share most of their slices, so
/// solving them back-to-back maximizes what an incremental engine can
/// reuse (cached local conditions, memoized instantiations, session
/// encodings). Groups appear in first-occurrence order and indices stay
/// ascending within a group, so a driver that walks the groups and sorts
/// results by index reproduces the ungrouped candidate order exactly.
fn group_by_sink(candidates: &[Candidate]) -> Vec<(u64, Vec<usize>)> {
    let mut order: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut slot: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        let key = c.sink.func.0 as u64;
        match slot.get(&key) {
            Some(&g) => order[g].1.push(i),
            None => {
                slot.insert(key, order.len());
                order.push((key, vec![i]));
            }
        }
    }
    order
}

/// Decides one candidate: query each alternative path until one is
/// feasible. With a cache, each path's verdict is looked up by canonical
/// key first and engine misses are stored back (Unknown is never stored).
/// `queries` counts only queries actually issued to the engine.
fn solve_candidate(
    program: &Program,
    pdg: &Pdg,
    engine: &mut dyn FeasibilityEngine,
    cache: Option<&VerdictCache>,
    cand: &Candidate,
    queries: &mut usize,
) -> CandVerdict {
    let mut verdict = Feasibility::Infeasible;
    let mut witness: Option<&DependencePath> = None;
    for path in &cand.paths {
        let slice = std::slice::from_ref(path);
        let feasibility = match cache {
            Some(c) => {
                let key = VerdictCache::key(program, slice);
                match c.get(key) {
                    Some(v) => v,
                    None => {
                        *queries += 1;
                        let o = engine.check_paths(program, pdg, slice);
                        c.insert(key, o.feasibility);
                        o.feasibility
                    }
                }
            }
            None => {
                *queries += 1;
                engine.check_paths(program, pdg, slice).feasibility
            }
        };
        match feasibility {
            Feasibility::Feasible => {
                verdict = Feasibility::Feasible;
                witness = Some(path);
                break;
            }
            Feasibility::Unknown => {
                verdict = Feasibility::Unknown;
                witness.get_or_insert(path);
            }
            Feasibility::Infeasible => {}
        }
    }
    match verdict {
        Feasibility::Infeasible => CandVerdict::Suppressed,
        v => CandVerdict::Report(BugReport {
            source: cand.source,
            sink: cand.sink,
            verdict: v,
            path: witness.expect("non-infeasible verdict has a path").clone(),
        }),
    }
}

/// Runs one checker over a program with the given feasibility engine.
///
/// A candidate is reported when *any* of its alternative paths is feasible;
/// it is suppressed only when every path is proven infeasible; undecided
/// candidates are reported conservatively (matching how bug detectors treat
/// solver timeouts).
pub fn analyze(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_with_cache(program, pdg, checker, engine, options, cache)
}

/// [`analyze`] with an explicit, possibly shared, verdict cache (`None`
/// disables caching regardless of [`AnalysisOptions::use_cache`]). The
/// returned [`AnalysisRun::cache`] counters are scoped to this run even
/// when the cache is shared.
pub fn analyze_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let t0 = Instant::now();
    let candidates: Vec<Candidate> = discover(program, pdg, checker, &options.propagate);
    let propagate_time = t0.elapsed();
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    let mut reports = Vec::new();
    let mut suppressed = 0usize;
    let mut queries = 0usize;
    // Slice-group batching: candidates sharing a sink function are solved
    // back-to-back, so an incremental engine sees maximally related
    // queries in a row. Results are re-sorted by candidate index, so
    // grouping never changes the report order.
    let groups = group_by_sink(&candidates);
    let t1 = Instant::now();
    let mut results: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    for (key, idxs) in &groups {
        engine.begin_group(*key);
        for &idx in idxs {
            let v = solve_candidate(program, pdg, engine, cache, &candidates[idx], &mut queries);
            results.push((idx, v));
        }
    }
    results.sort_by_key(|(idx, _)| *idx);
    for (_, v) in results {
        match v {
            CandVerdict::Suppressed => suppressed += 1,
            CandVerdict::Report(r) => reports.push(r),
        }
    }
    let solve_time = t1.elapsed();

    // The graph (and the cache, if any) is retained for the whole run,
    // for every engine: one accounting path shared with the parallel
    // driver.
    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(std::iter::once(engine.memory()), graph_bytes, cache_bytes);
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();

    AnalysisRun {
        engine: engine.name().to_string(),
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
    }
}

/// Runs one checker with per-thread engines, fanning candidates out over
/// `threads` worker threads (the paper's evaluation used fifteen). Each
/// worker owns an engine built by `factory`, so no locking is needed on
/// solver state.
///
/// Work distribution is a **work-stealing queue over slice groups**:
/// candidates are batched by sink function ([`FeasibilityEngine::begin_group`])
/// and an atomic cursor hands whole groups to workers, so a worker stuck
/// behind one slow candidate no longer idles the rest of its stride while
/// related queries still land on the same engine back-to-back (which is
/// what makes incremental sessions pay off). Workers share one
/// [`VerdictCache`] (unless disabled via [`AnalysisOptions::use_cache`]),
/// and results are merged back in candidate order, so the report list is
/// byte-identical to the sequential driver's regardless of thread count
/// or steal order.
pub fn analyze_parallel(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let local = VerdictCache::new();
    let cache = options.use_cache.then_some(&local);
    analyze_parallel_with_cache(program, pdg, checker, factory, threads, options, cache)
}

/// [`analyze_parallel`] with an explicit, possibly shared, verdict cache
/// (`None` disables caching regardless of [`AnalysisOptions::use_cache`]).
pub fn analyze_parallel_with_cache(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> AnalysisRun {
    let t0 = Instant::now();
    let candidates: Vec<Candidate> = discover(program, pdg, checker, &options.propagate);
    let propagate_time = t0.elapsed();
    let threads = threads.max(1);
    let cache_before = cache.map(|c| c.stats()).unwrap_or_default();

    struct WorkerOut {
        /// The factory-built engine's name (same for every worker).
        name: &'static str,
        /// `(candidate index, outcome)` pairs, in steal order.
        results: Vec<(usize, CandVerdict)>,
        queries: usize,
        memory: MemoryAccountant,
    }

    // Work-stealing cursor over slice groups: workers atomically grab one
    // group at a time. Group granularity keeps related queries on one
    // engine (the point of the batching) while `fetch_add` keeps the grab
    // wait-free and the tail balanced.
    let groups = group_by_sink(&candidates);
    let cursor = AtomicUsize::new(0);

    let t1 = Instant::now();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cands = &candidates;
            let groups = &groups;
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                let mut out = WorkerOut {
                    name: engine.name(),
                    results: Vec::new(),
                    queries: 0,
                    memory: MemoryAccountant::new(),
                };
                loop {
                    let g = cursor.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    let (key, idxs) = &groups[g];
                    engine.begin_group(*key);
                    for &idx in idxs {
                        let v = solve_candidate(
                            program,
                            pdg,
                            engine.as_mut(),
                            cache,
                            &cands[idx],
                            &mut out.queries,
                        );
                        out.results.push((idx, v));
                    }
                }
                out.memory = engine.memory().clone();
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    let solve_time = t1.elapsed();

    // Merge in candidate order: the exact order the sequential driver
    // would have produced, independent of which worker stole what.
    let mut merged: Vec<(usize, CandVerdict)> = Vec::with_capacity(candidates.len());
    let mut queries = 0usize;
    for o in &outputs {
        queries += o.queries;
    }
    let engine_name = outputs.first().map(|o| o.name).unwrap_or("parallel");
    let mut memories: Vec<MemoryAccountant> = Vec::with_capacity(outputs.len());
    for o in outputs {
        memories.push(o.memory);
        merged.extend(o.results);
    }
    merged.sort_by_key(|(idx, _)| *idx);
    let mut reports: Vec<BugReport> = Vec::new();
    let mut suppressed = 0usize;
    for (_, v) in merged {
        match v {
            CandVerdict::Suppressed => suppressed += 1,
            CandVerdict::Report(r) => reports.push(r),
        }
    }

    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0);
    let mem = run_accounting(memories.iter(), graph_bytes, cache_bytes);
    let cache_stats = cache
        .map(|c| c.stats().since(&cache_before))
        .unwrap_or_default();

    AnalysisRun {
        engine: format!("{engine_name}×{threads}"),
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
        cache: cache_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn run(src: &str) -> AnalysisRun {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        )
    }

    #[test]
    fn reports_feasible_and_suppresses_infeasible() {
        let run = run(
            "extern fn deref(p);\n\
             fn feasible(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn infeasible(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        );
        assert_eq!(run.candidates, 2);
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 1);
        assert_eq!(run.reports[0].verdict, Feasibility::Feasible);
    }

    #[test]
    fn unconditional_flow_is_reported() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 0);
    }

    #[test]
    fn clean_program_reports_nothing() {
        let run = run("extern fn deref(p); fn f(x) { deref(x); return 0; }");
        assert_eq!(run.candidates, 0);
        assert!(run.reports.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = "extern fn deref(p);\n\
             fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
             fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
             fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        let factory = || -> Box<dyn FeasibilityEngine> {
            Box::new(FusionSolver::new(SolverConfig::default()))
        };
        for threads in [1usize, 2, 4] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &factory,
                threads,
                &AnalysisOptions::new(),
            );
            let key = |r: &crate::engine::BugReport| (r.source, r.sink);
            let mut a: Vec<_> = seq.reports.iter().map(key).collect();
            let mut b: Vec<_> = par.reports.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }

    #[test]
    fn timings_and_memory_are_populated() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert!(run.peak_memory > 0);
        assert!(run.queries >= 1);
    }

    const MULTI_SRC: &str = "extern fn deref(p);\n\
         fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
         fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
         fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";

    fn fusion_factory() -> Box<dyn FeasibilityEngine> {
        Box::new(FusionSolver::new(SolverConfig::default()))
    }

    #[test]
    fn parallel_engine_name_keeps_base_and_thread_count() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let run = analyze_parallel(
            &p,
            &g,
            &Checker::null_deref(),
            &fusion_factory,
            4,
            &AnalysisOptions::new(),
        );
        assert_eq!(run.engine, "fusion×4");
    }

    #[test]
    fn sequential_and_parallel_accounting_agree() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let opts = AnalysisOptions::without_cache();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(&p, &g, &Checker::null_deref(), &mut engine, &opts);
        // One worker: the unified accounting path must yield the exact
        // sequential peak.
        let par1 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 1, &opts);
        assert_eq!(seq.peak_memory, par1.peak_memory, "1-thread parity");
        // Many workers: each retains its own engine state, so the summed
        // peak is bounded below by the sequential peak and above by
        // `threads` sequential peaks.
        let par4 = analyze_parallel(&p, &g, &Checker::null_deref(), &fusion_factory, 4, &opts);
        assert!(par4.peak_memory >= seq.peak_memory);
        assert!(par4.peak_memory <= seq.peak_memory * 4);
    }

    #[test]
    fn cached_runs_report_hits_and_identical_reports() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let uncached = {
            let mut e = FusionSolver::new(SolverConfig::default());
            analyze(
                &p,
                &g,
                &Checker::null_deref(),
                &mut e,
                &AnalysisOptions::without_cache(),
            )
        };
        assert_eq!(uncached.cache, crate::cache::CacheStats::default());

        // Two sequential runs sharing one cache: the second run is all hits.
        let shared = VerdictCache::new();
        let opts = AnalysisOptions::new();
        let mut e1 = FusionSolver::new(SolverConfig::default());
        let first = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e1,
            &opts,
            Some(&shared),
        );
        assert!(first.cache.misses > 0);
        assert!(first.cache.inserts > 0);
        let mut e2 = FusionSolver::new(SolverConfig::default());
        let second = analyze_with_cache(
            &p,
            &g,
            &Checker::null_deref(),
            &mut e2,
            &opts,
            Some(&shared),
        );
        assert!(second.cache.hits > 0, "warm cache must hit");
        assert_eq!(second.queries, 0, "every verdict came from the cache");

        for cached in [&first, &second] {
            let a: Vec<_> = uncached
                .reports
                .iter()
                .map(|r| (r.source, r.sink))
                .collect();
            let b: Vec<_> = cached.reports.iter().map(|r| (r.source, r.sink)).collect();
            assert_eq!(a, b, "cache must not change reports");
            assert_eq!(uncached.suppressed, cached.suppressed);
        }
    }

    #[test]
    fn work_stealing_merge_is_byte_identical_to_sequential() {
        let p = compile(MULTI_SRC, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::without_cache(),
        );
        for threads in [1usize, 2, 4, 8] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &fusion_factory,
                threads,
                &AnalysisOptions::new(),
            );
            // Not just set equality: identical order and contents.
            let a: Vec<_> = seq
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            let b: Vec<_> = par
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }
}

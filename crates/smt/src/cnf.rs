//! CNF representation shared by the bit-blaster and the SAT solver.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BVar(pub u32);

impl BVar {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with explicit sign (`true` = positive).
    pub fn new(v: BVar, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code (usable as an array index in `0..2*num_vars`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "~x{}", self.var().0)
        }
    }
}

/// A formula in conjunctive normal form.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables (`BVar(0)..BVar(num_vars)`).
    pub num_vars: u32,
    /// The clauses. An empty clause makes the formula trivially unsat.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> BVar {
        let v = BVar(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Adds a clause.
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Adds the unit clause `[l]`.
    pub fn add_unit(&mut self, l: Lit) {
        self.clauses.push(vec![l]);
    }

    /// Evaluates the formula under a full assignment (`assign[v]` is the
    /// value of `BVar(v)`).
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assign[l.var().index()] == l.is_pos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_round_trips() {
        let v = BVar(17);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        cnf.add(vec![Lit::pos(a), Lit::pos(b)]);
        cnf.add(vec![Lit::neg(a)]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}

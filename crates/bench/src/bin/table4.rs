//! Table 4 — taint analyses (CWE-23, CWE-402) on the industrial-sized
//! subjects: Fusion vs Pinpoint time and memory.

use fusion::checkers::Checker;
use fusion::graph_solver::FusionSolver;
use fusion_baselines::PinpointEngine;
use fusion_bench::{banner, build_subject, default_budget, fmt_ratio, run_checker, scale_from_env};
use fusion_workloads::large_subjects;

fn main() {
    banner(
        "Table 4: taint analysis on the industrial-sized projects",
        "CWE-23 (relative path traversal) and CWE-402 (private resource transmission)",
    );
    let scale = scale_from_env();
    for (label, checker) in [("CWE-23", Checker::cwe23()), ("CWE-402", Checker::cwe402())] {
        println!("\n--- {label} ---");
        println!(
            "{:>2} {:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>7} {:>7}",
            "ID", "program", "fus-mem", "fus-time", "pin-mem", "pin-time", "mem-x", "time-x"
        );
        for spec in large_subjects() {
            let subject = build_subject(spec, scale);
            let mut fusion_engine = FusionSolver::new(default_budget());
            let fusion_run = run_checker(&subject, &checker, &mut fusion_engine);
            let mut pinpoint_engine = PinpointEngine::new(default_budget());
            let pinpoint_run = run_checker(&subject, &checker, &mut pinpoint_engine);
            println!(
                "{:>2} {:>8} | {:>9}K {:>9.1}ms | {:>9}K {:>9.1}ms | {:>7} {:>7}",
                spec.id,
                spec.name,
                fusion_run.peak_memory / 1024,
                fusion_run.total_time().as_secs_f64() * 1e3,
                pinpoint_run.peak_memory / 1024,
                pinpoint_run.total_time().as_secs_f64() * 1e3,
                fmt_ratio(
                    pinpoint_run.peak_memory as f64,
                    fusion_run.peak_memory as f64
                ),
                fmt_ratio(
                    pinpoint_run.total_time().as_secs_f64(),
                    fusion_run.total_time().as_secs_f64()
                ),
            );
        }
    }
    println!("\npaper: ~10x speedup, ~11% of memory on average; one memory-out (wine, CWE-23).");
}

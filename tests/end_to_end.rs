//! End-to-end integration tests: every feasibility engine must agree on a
//! corpus of hand-written programs with known verdicts, and whole runs
//! must be deterministic.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{analyze, analyze_parallel_with_cache, AnalysisOptions, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion_baselines::{ArEngine, PinpointEngine, Tactic};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

/// (source, reported nulls, suppressed nulls)
const CORPUS: &[(&str, usize, usize)] = &[
    // Unconditional flow.
    ("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }", 1, 0),
    // Feasible guard.
    (
        "extern fn deref(p); fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }",
        1,
        0,
    ),
    // Contradictory range.
    (
        "extern fn deref(p); fn f(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        0,
        1,
    ),
    // Parity contradiction through arithmetic.
    (
        "extern fn deref(p); fn f(x) { let q = null; let r = 1; if (x * 2 == 7) { r = q; } deref(r); return 0; }",
        0,
        1,
    ),
    // Interprocedural: constant callee decides the branch (feasible).
    (
        "extern fn deref(p); fn ten() { return 10; } \
         fn f() { let q = null; let r = 1; if (ten() > 5) { r = q; } deref(r); return 0; }",
        1,
        0,
    ),
    // Interprocedural: constant callee makes the branch dead.
    (
        "extern fn deref(p); fn three() { return 3; } \
         fn f() { let q = null; let r = 1; if (three() > 5) { r = q; } deref(r); return 0; }",
        0,
        1,
    ),
    // The paper's Fig. 1 shape (feasible).
    (
        "extern fn deref(p); fn bar(x) { let y = x * 2; let z = y; return z; } \
         fn foo(a, b) { let q = null; let r = 1; if (bar(a) < bar(b)) { r = q; } deref(r); return 0; }",
        1,
        0,
    ),
    // Null through a call chain, guarded infeasibly.
    (
        "extern fn deref(p); fn id(x) { return x; } \
         fn f(a) { let q = null; let r = id(id(q)); let s = 1; \
           if (a != a) { s = r; } deref(s); return 0; }",
        0,
        1,
    ),
    // Loop-carried guard, unrolled: i stays below 2 after 2 unrollings.
    (
        "extern fn deref(p); fn f(n) { let q = null; let r = 1; let i = 0; \
           while (i < n) { i = i + 1; } if (i == 2) { r = q; } deref(r); return 0; }",
        1,
        0,
    ),
    // Source guarded inside the callee (upward-escaping path): the
    // callee's branch condition constrains feasibility in the caller.
    (
        "extern fn deref(p); \
         fn make(x) { let q = null; let r = 1; if (x > 7) { r = q; } return r; } \
         fn f(a) { let v = make(a); deref(v); return 0; }",
        1,
        0,
    ),
    // Same shape with an impossible callee guard.
    (
        "extern fn deref(p); \
         fn make(x) { let q = null; let r = 1; if (x != x) { r = q; } return r; } \
         fn f(a) { let v = make(a); deref(v); return 0; }",
        0,
        1,
    ),
    // Callee guard contradicts the caller guard on the same value: each
    // alone is satisfiable, together impossible (x > 10 at the call, the
    // callee requires its parameter < 5).
    (
        "extern fn deref(p); \
         fn make(x) { let q = null; let r = 1; if (x < 5) { r = q; } return r; } \
         fn f(a) { let r = 1; if (a > 10) { r = make(a); } deref(r); return 0; }",
        0,
        1,
    ),
    // Two distinct sources, one feasible, one not.
    (
        "extern fn deref(p); fn f(x) { \
           let q1 = null; let q2 = null; let r = 1; let s = 1; \
           if (x == 4) { r = q1; } \
           if (x != x) { s = q2; } \
           deref(r); deref(s); return 0; }",
        1,
        1,
    ),
];

fn engines() -> Vec<Box<dyn FeasibilityEngine>> {
    let cfg = SolverConfig::default();
    vec![
        Box::new(FusionSolver::new(cfg)),
        Box::new(UnoptimizedGraphSolver::new(cfg)),
        Box::new(PinpointEngine::new(cfg)),
        Box::new(PinpointEngine::with_tactic(cfg, Tactic::Lfs)),
        Box::new(PinpointEngine::with_tactic(cfg, Tactic::Hfs)),
        Box::new(ArEngine::new(cfg)),
    ]
}

#[test]
fn all_engines_agree_on_corpus() {
    for (i, (src, want_reports, want_suppressed)) in CORPUS.iter().enumerate() {
        let program = compile(src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        for mut engine in engines() {
            let run = analyze(
                &program,
                &pdg,
                &Checker::null_deref(),
                engine.as_mut(),
                &AnalysisOptions::new(),
            );
            assert_eq!(
                (run.reports.len(), run.suppressed),
                (*want_reports, *want_suppressed),
                "case {i} with engine {}",
                run.engine,
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let (src, ..) = CORPUS[6];
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let collect = || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        let run = analyze(
            &program,
            &pdg,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        run.reports
            .iter()
            .map(|r| (r.source, r.sink, r.path.nodes.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(collect(), collect());
}

#[test]
fn cached_parallel_runs_match_sequential_uncached_across_corpus() {
    // The work-stealing parallel driver with a shared verdict cache must
    // produce the *identical* report list — same (source, sink) pairs in
    // the same order — as the sequential, cache-free analysis, for every
    // corpus program and every thread count. Steal order and cache hits
    // must never show through.
    for (i, (src, ..)) in CORPUS.iter().enumerate() {
        let program = compile(src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let checker = Checker::null_deref();
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(
            &program,
            &pdg,
            &checker,
            &mut engine,
            &AnalysisOptions::without_cache(),
        );
        let seq_keys: Vec<_> = seq
            .reports
            .iter()
            .map(|r| (r.source, r.sink, r.path.nodes.clone()))
            .collect();
        let factory = || -> Box<dyn FeasibilityEngine> {
            Box::new(FusionSolver::new(SolverConfig::default()))
        };
        for threads in [1usize, 2, 4, 8] {
            let cache = VerdictCache::new();
            let par = analyze_parallel_with_cache(
                &program,
                &pdg,
                &checker,
                &factory,
                threads,
                &AnalysisOptions::new(),
                Some(&cache),
            );
            let par_keys: Vec<_> = par
                .reports
                .iter()
                .map(|r| (r.source, r.sink, r.path.nodes.clone()))
                .collect();
            assert_eq!(
                seq_keys, par_keys,
                "case {i}, {threads} thread(s): parallel+cache must match sequential"
            );
            assert_eq!(
                seq.suppressed, par.suppressed,
                "case {i}, {threads} thread(s)"
            );
        }
    }
}

#[test]
fn taint_checkers_work_end_to_end() {
    let src = "extern fn gets(); extern fn fopen(p); extern fn getpass(); extern fn sendmsg(d);\n\
        fn f(flag) {\n\
          let input = gets();\n\
          let secret = getpass();\n\
          if (flag > 0) { fopen(input + 1); }\n\
          if (flag * 2 == 9) { sendmsg(secret); }\n\
          return 0;\n\
        }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let mut engine = FusionSolver::new(SolverConfig::default());
    let r23 = analyze(
        &program,
        &pdg,
        &Checker::cwe23(),
        &mut engine,
        &AnalysisOptions::new(),
    );
    assert_eq!((r23.reports.len(), r23.suppressed), (1, 0));
    let r402 = analyze(
        &program,
        &pdg,
        &Checker::cwe402(),
        &mut engine,
        &AnalysisOptions::new(),
    );
    assert_eq!((r402.reports.len(), r402.suppressed), (0, 1));
}

#[test]
fn fusion_clones_less_than_algorithm4() {
    // A 3-deep chain of double calls: Alg. 4 needs 8 instances, fusion's
    // quick path collapses all affine levels.
    let src = "extern fn deref(p);\n\
        fn l0(x) { return x * 3 + 1; }\n\
        fn l1(x) { return l0(x * 5); }\n\
        fn l2(x) { return l1(x + 2); }\n\
        fn f(a, b) { let q = null; let r = 1; if (l2(a) < l2(b)) { r = q; } deref(r); return 0; }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let checker = Checker::null_deref();
    let mut fused = FusionSolver::new(SolverConfig::default());
    let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
    let _ = analyze(
        &program,
        &pdg,
        &checker,
        &mut fused,
        &AnalysisOptions::new(),
    );
    let _ = analyze(
        &program,
        &pdg,
        &checker,
        &mut unopt,
        &AnalysisOptions::new(),
    );
    let fused_instances: usize = 1; // foo only: the whole chain is affine
    assert!(fused.records().iter().all(|_| true));
    let max_unopt = unopt
        .records()
        .iter()
        .map(|r| r.condition_nodes)
        .max()
        .unwrap_or(0);
    let max_fused = fused
        .records()
        .iter()
        .map(|r| r.condition_nodes)
        .max()
        .unwrap_or(0);
    assert!(
        max_fused < max_unopt,
        "fusion's condition ({max_fused} nodes) must be smaller than Alg. 4's ({max_unopt})"
    );
    let _ = fused_instances;
}

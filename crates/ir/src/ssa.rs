//! The core IR: the paper's Fig. 4 language in SSA form with explicit gating.
//!
//! After lowering (see [`crate::lower`]) every function is a loop-free list
//! of *definitions*. Each definition introduces exactly one variable, so a
//! definition and the variable it defines are interchangeable — exactly the
//! convention Def. 3.1 of the paper uses for program-dependence-graph
//! vertices.
//!
//! Control dependence is explicit: every definition carries an optional
//! `guard`, the [`DefKind::Branch`] definition of the innermost `if` it is
//! nested in. A definition executes at runtime if and only if its guard chain
//! evaluates to all-true, which is the control-dependence relation of
//! Def. 3.1 for structured code.

use crate::interner::{Interner, Symbol};
use std::fmt;

/// Bit width of every value in the language (the paper models each variable
/// as a bit-vector of its type's width; we use a uniform 32-bit word).
pub const WORD_BITS: u32 = 32;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a variable (equivalently: its defining statement) within a
/// function. Also the vertex id used by the program dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifies a call site uniquely across the whole program — the pair of
/// parentheses `(i` / `)i` that labels call and return edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

impl FuncId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CallSiteId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary operators of the core language (the `⊕` of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; `x / 0 = 2^32 - 1` (SMT-LIB `bvudiv`).
    Udiv,
    /// Unsigned remainder; `x % 0 = x` (SMT-LIB `bvurem`).
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amounts >= 32 give 0).
    Shl,
    /// Logical right shift (amounts >= 32 give 0).
    Lshr,
    /// Arithmetic right shift (amounts >= 32 replicate the sign).
    Ashr,
    /// Signed `<`; yields 0/1.
    Slt,
    /// Signed `<=`; yields 0/1.
    Sle,
    /// Unsigned `<`; yields 0/1.
    Ult,
    /// Unsigned `<=`; yields 0/1.
    Ule,
    /// Equality; yields 0/1.
    Eq,
    /// Disequality; yields 0/1.
    Ne,
}

impl Op {
    /// Returns `true` for operators that yield a 0/1 boolean word.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            Op::Slt | Op::Sle | Op::Ult | Op::Ule | Op::Eq | Op::Ne
        )
    }

    /// Evaluates the operator on concrete 32-bit words.
    #[allow(clippy::manual_checked_ops)] // x/0 = MAX is SMT-LIB semantics, not an error path
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Mul => a.wrapping_mul(b),
            Op::Udiv => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            Op::Urem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Shl => {
                if b >= 32 {
                    0
                } else {
                    a.wrapping_shl(b)
                }
            }
            Op::Lshr => {
                if b >= 32 {
                    0
                } else {
                    a.wrapping_shr(b)
                }
            }
            Op::Ashr => {
                if b >= 32 {
                    ((a as i32) >> 31) as u32
                } else {
                    ((a as i32) >> b) as u32
                }
            }
            Op::Slt => ((a as i32) < (b as i32)) as u32,
            Op::Sle => ((a as i32) <= (b as i32)) as u32,
            Op::Ult => (a < b) as u32,
            Op::Ule => (a <= b) as u32,
            Op::Eq => (a == b) as u32,
            Op::Ne => (a != b) as u32,
        }
    }
}

/// The statement that defines a variable (the right-hand sides of Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefKind {
    /// `v = ⟨v⟩` — the identity statement initializing parameter `index`.
    Param {
        /// Zero-based parameter position.
        index: usize,
    },
    /// Constant assignment. `is_null` flags the distinguished `null`
    /// constant (value 0) that seeds the null-dereference checker.
    Const {
        /// The 32-bit constant value.
        value: u32,
        /// Whether this constant was written as `null` in the source.
        is_null: bool,
    },
    /// `v1 = v2` — a plain copy.
    Copy {
        /// Source variable.
        src: VarId,
    },
    /// `v1 = v2 ⊕ v3`.
    Binary {
        /// The operator.
        op: Op,
        /// Left operand.
        lhs: VarId,
        /// Right operand.
        rhs: VarId,
    },
    /// `v1 = ite(v2, v3, v4)` — the gating assignment that replaces φ.
    /// Selects `then_v` when `cond != 0`.
    Ite {
        /// The (word-valued, nonzero-is-true) condition.
        cond: VarId,
        /// Value when the condition is nonzero.
        then_v: VarId,
        /// Value when the condition is zero.
        else_v: VarId,
    },
    /// `v1 = f(v2, v3, ...)`.
    Call {
        /// The callee.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<VarId>,
        /// The unique parenthesis label of this call site.
        site: CallSiteId,
    },
    /// `if (v1 = v2) { … }` — the branch vertex. Definitions guarded by this
    /// vertex execute iff `cond != 0` (and this vertex's own guards hold).
    Branch {
        /// The branch condition variable.
        cond: VarId,
    },
    /// `return v1 = v2` — the single exit of the function.
    Return {
        /// The returned variable.
        src: VarId,
    },
}

impl DefKind {
    /// The variables this definition reads, in a fixed order.
    pub fn operands(&self) -> Vec<VarId> {
        match self {
            DefKind::Param { .. } | DefKind::Const { .. } => vec![],
            DefKind::Copy { src } | DefKind::Return { src } => vec![*src],
            DefKind::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            DefKind::Ite {
                cond,
                then_v,
                else_v,
            } => vec![*cond, *then_v, *else_v],
            DefKind::Call { args, .. } => args.clone(),
            DefKind::Branch { cond } => vec![*cond],
        }
    }
}

/// One SSA definition: a variable, how it is computed, and its guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    /// The defined variable (also this definition's vertex id).
    pub var: VarId,
    /// The defining statement.
    pub kind: DefKind,
    /// The innermost enclosing branch vertex, if any.
    pub guard: Option<VarId>,
    /// Human-readable name for diagnostics (`x.2`, `t.7`, ...).
    pub name: Symbol,
}

/// A function in core SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function name.
    pub name: Symbol,
    /// This function's id inside its [`Program`].
    pub id: FuncId,
    /// Parameter variables (each defined by a [`DefKind::Param`]).
    pub params: Vec<VarId>,
    /// All definitions in program order. `defs[i].var == VarId(i)`.
    pub defs: Vec<Def>,
    /// The [`DefKind::Return`] definition, if the function has a body.
    pub ret: Option<VarId>,
    /// External declaration (no body): `f(v1, ..) = ∅`.
    pub is_extern: bool,
}

impl Function {
    /// Looks up a definition by variable id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this function.
    pub fn def(&self, v: VarId) -> &Def {
        &self.defs[v.index()]
    }

    /// Iterates over all definitions in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Def> {
        self.defs.iter()
    }

    /// Number of definitions (statements) in the body.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the function body is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The guard chain of `v`, innermost first.
    pub fn guards(&self, v: VarId) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut cur = self.def(v).guard;
        while let Some(g) = cur {
            out.push(g);
            cur = self.def(g).guard;
        }
        out
    }
}

/// Metadata about one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Function containing the call.
    pub caller: FuncId,
    /// The call definition's variable in the caller.
    pub stmt: VarId,
    /// The callee.
    pub callee: FuncId,
}

/// A whole program in core SSA form, plus its name interner and call-site
/// table.
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions; `functions[i].id == FuncId(i)`.
    pub functions: Vec<Function>,
    /// Global call-site table; `call_sites[i]` corresponds to
    /// `CallSiteId(i)`.
    pub call_sites: Vec<CallSite>,
    /// The interner for all names in the program.
    pub interner: Interner,
}

impl Program {
    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.functions[f.index()]
    }

    /// Finds a function by source name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        let sym = self.interner.lookup(name)?;
        self.functions.iter().find(|f| f.name == sym)
    }

    /// Resolves a symbol to its string.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up a call site.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn call_site(&self, s: CallSiteId) -> CallSite {
        self.call_sites[s.index()]
    }

    /// Total number of definitions across all functions — the program size
    /// used in the paper's complexity arguments.
    pub fn size(&self) -> usize {
        self.functions.iter().map(Function::len).sum()
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval_matches_two_complement_semantics() {
        assert_eq!(Op::Add.eval(u32::MAX, 1), 0);
        assert_eq!(Op::Sub.eval(0, 1), u32::MAX);
        assert_eq!(Op::Mul.eval(1 << 31, 2), 0);
        assert_eq!(Op::Udiv.eval(7, 0), u32::MAX);
        assert_eq!(Op::Urem.eval(7, 0), 7);
        assert_eq!(Op::Slt.eval(u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(Op::Ult.eval(u32::MAX, 0), 0);
        assert_eq!(Op::Ashr.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(Op::Shl.eval(1, 40), 0);
    }

    #[test]
    fn predicates_are_flagged() {
        assert!(Op::Eq.is_predicate());
        assert!(Op::Slt.is_predicate());
        assert!(!Op::Add.is_predicate());
    }

    #[test]
    fn operand_order_is_stable() {
        let k = DefKind::Ite {
            cond: VarId(0),
            then_v: VarId(1),
            else_v: VarId(2),
        };
        assert_eq!(k.operands(), vec![VarId(0), VarId(1), VarId(2)]);
    }
}

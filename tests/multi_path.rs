//! The conjunction semantics of Algorithm 2: `⋀_{π ∈ Π} φ_π`.
//!
//! §3.1's Example 3.2: to check whether `send(c, d)` leaks, *two*
//! dependence paths must be simultaneously feasible. The engines accept a
//! path set Π; these tests exercise genuinely multi-path queries, including
//! a case where each path is individually feasible but their conjunction is
//! not.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{analyze_with_cache, AnalysisOptions, Feasibility, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::propagate::{discover, PropagateOptions};
use fusion_baselines::PinpointEngine;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_pdg::paths::DependencePath;
use fusion_smt::solver::SolverConfig;

fn paths_to_sink(program: &Program, pdg: &Pdg, checker: &Checker) -> Vec<DependencePath> {
    discover(program, pdg, checker, &PropagateOptions::default())
        .into_iter()
        .map(|c| c.paths[0].clone())
        .collect()
}

fn verdicts(program: &Program, pdg: &Pdg, paths: &[DependencePath]) -> Vec<Feasibility> {
    let cfg = SolverConfig::default();
    let mut out = Vec::new();
    let mut engines: Vec<Box<dyn FeasibilityEngine>> = vec![
        Box::new(FusionSolver::new(cfg)),
        Box::new(UnoptimizedGraphSolver::new(cfg)),
        Box::new(PinpointEngine::new(cfg)),
    ];
    for e in &mut engines {
        out.push(e.check_paths(program, pdg, paths).feasibility);
    }
    out
}

#[test]
fn simultaneous_taint_pair_feasible() {
    // Example 3.2's shape: both password and address must reach send.
    let src = "extern fn getpass(); extern fn user_ip(); extern fn sendmsg(x);\n\
        fn f(flag) {\n\
          let a = getpass();\n\
          let b = user_ip();\n\
          let c = 1; let d = 1;\n\
          if (flag > 0) { c = a + 0; }\n\
          if (flag > 10) { d = b + 0; }\n\
          sendmsg(c);\n\
          sendmsg(d);\n\
          return 0;\n\
        }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let mut checker = Checker::cwe402();
    checker.source_fns.push("user_ip".into());
    let paths = paths_to_sink(&program, &pdg, &checker);
    assert_eq!(paths.len(), 2, "two source→sink flows expected");
    // Conjunction: flag > 0 AND flag > 10 — satisfiable together.
    for v in verdicts(&program, &pdg, &paths) {
        assert_eq!(v, Feasibility::Feasible);
    }
}

#[test]
fn individually_feasible_jointly_infeasible() {
    // Each flow is gated on an opposite sign of the same flag: each path
    // alone is feasible, the conjunction is not. Only a path-set query
    // can see this.
    let src = "extern fn getpass(); extern fn user_ip(); extern fn sendmsg(x);\n\
        fn f(flag) {\n\
          let a = getpass();\n\
          let b = user_ip();\n\
          let c = 1; let d = 1;\n\
          if (flag > 10) { c = a + 0; }\n\
          if (flag < 5) { d = b + 0; }\n\
          sendmsg(c);\n\
          sendmsg(d);\n\
          return 0;\n\
        }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let mut checker = Checker::cwe402();
    checker.source_fns.push("user_ip".into());
    let paths = paths_to_sink(&program, &pdg, &checker);
    assert_eq!(paths.len(), 2);
    // Individually feasible:
    for p in &paths {
        for v in verdicts(&program, &pdg, std::slice::from_ref(p)) {
            assert_eq!(v, Feasibility::Feasible);
        }
    }
    // Jointly infeasible:
    for v in verdicts(&program, &pdg, &paths) {
        assert_eq!(v, Feasibility::Infeasible, "conjunction must be unsat");
    }
}

#[test]
fn repeated_analysis_hits_the_verdict_cache() {
    // A multi-path subject analyzed twice through one shared cache: the
    // second run's feasibility queries are answered from the cache — the
    // hit counters are surfaced on the AnalysisRun — and the reports are
    // identical.
    let src = "extern fn getpass(); extern fn user_ip(); extern fn sendmsg(x);\n\
        fn f(flag) {\n\
          let a = getpass();\n\
          let b = user_ip();\n\
          let c = 1; let d = 1;\n\
          if (flag > 0) { c = a + 0; }\n\
          if (flag > 10) { d = b + 0; }\n\
          sendmsg(c);\n\
          sendmsg(d);\n\
          return 0;\n\
        }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let mut checker = Checker::cwe402();
    checker.source_fns.push("user_ip".into());
    let cache = VerdictCache::new();
    let mut engine = FusionSolver::new(SolverConfig::default());
    let opts = AnalysisOptions::new();
    let first = analyze_with_cache(&program, &pdg, &checker, &mut engine, &opts, Some(&cache));
    let second = analyze_with_cache(&program, &pdg, &checker, &mut engine, &opts, Some(&cache));
    assert!(
        first.cache.misses > 0,
        "first run fills the cache: {:?}",
        first.cache
    );
    assert_eq!(first.cache.hits, 0, "nothing to hit yet");
    assert!(
        second.cache.hits > 0,
        "second run must hit: {:?}",
        second.cache
    );
    assert_eq!(second.queries, 0, "every verdict served from the cache");
    let keys = |run: &fusion::engine::AnalysisRun| {
        run.reports
            .iter()
            .map(|r| (r.source, r.sink))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&first), keys(&second));
}

#[test]
fn empty_path_set_is_trivially_feasible() {
    let src = "fn f(x) { return x; }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    for v in verdicts(&program, &pdg, &[]) {
        assert_eq!(v, Feasibility::Feasible);
    }
}

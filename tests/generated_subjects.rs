//! Integration tests over generated subjects: precision agreement between
//! all engines, perfect scores against seeded ground truth, and the
//! memory/caching contracts of the fused design.

use fusion::checkers::{CheckKind, Checker};
use fusion::engine::{analyze, AnalysisOptions, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::memory::Category;
use fusion_baselines::PinpointEngine;
use fusion_ir::{compile_ast, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, score, GenConfig, SUBJECTS};

fn build(
    seed: u64,
    functions: usize,
) -> (fusion_ir::Program, Pdg, Vec<fusion_workloads::SeededBug>) {
    let cfg = GenConfig {
        seed,
        functions,
        ..Default::default()
    };
    let mut subject = generate(&cfg);
    let program = compile_ast(
        &subject.surface,
        &mut subject.interner,
        CompileOptions::default(),
    )
    .expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg, subject.bugs)
}

#[test]
fn three_engines_agree_across_seeds_and_checkers() {
    for seed in [7u64, 21, 99] {
        let (program, pdg, _) = build(seed, 16);
        for checker in [Checker::null_deref(), Checker::cwe23(), Checker::cwe402()] {
            let mut results = Vec::new();
            let engines: Vec<Box<dyn FeasibilityEngine>> = vec![
                Box::new(FusionSolver::new(SolverConfig::default())),
                Box::new(UnoptimizedGraphSolver::new(SolverConfig::default())),
                Box::new(PinpointEngine::new(SolverConfig::default())),
            ];
            for mut e in engines {
                let run = analyze(
                    &program,
                    &pdg,
                    &checker,
                    e.as_mut(),
                    &AnalysisOptions::new(),
                );
                let mut keys: Vec<_> = run.reports.iter().map(|r| (r.source, r.sink)).collect();
                keys.sort();
                results.push((run.engine, keys, run.suppressed));
            }
            for w in results.windows(2) {
                assert_eq!(
                    w[0].1, w[1].1,
                    "seed {seed} {}: {} vs {}",
                    checker.kind, w[0].0, w[1].0
                );
                assert_eq!(w[0].2, w[1].2, "suppressed differ at seed {seed}");
            }
        }
    }
}

#[test]
fn perfect_scores_on_all_checkers() {
    let (program, pdg, bugs) = build(0xF051_0001, 24);
    for (checker, kind) in [
        (Checker::null_deref(), CheckKind::NullDeref),
        (Checker::cwe23(), CheckKind::Cwe23),
        (Checker::cwe402(), CheckKind::Cwe402),
    ] {
        let mut engine = FusionSolver::new(SolverConfig::default());
        let run = analyze(
            &program,
            &pdg,
            &checker,
            &mut engine,
            &AnalysisOptions::new(),
        );
        let s = score(&program, kind, &bugs, &run.reports);
        assert_eq!(s.false_positives, 0, "{kind}");
        assert_eq!(s.missed, 0, "{kind}");
    }
}

#[test]
fn fusion_never_retains_path_conditions() {
    let (program, pdg, _) = build(5, 20);
    let mut engine = FusionSolver::new(SolverConfig::default());
    let _ = analyze(
        &program,
        &pdg,
        &Checker::null_deref(),
        &mut engine,
        &AnalysisOptions::new(),
    );
    assert_eq!(engine.memory().current(Category::PathConditions), 0);
    assert_eq!(engine.memory().current(Category::Summaries), 0);
}

#[test]
fn pinpoint_retains_conditions_and_summaries() {
    let (program, pdg, _) = build(5, 20);
    let mut engine = PinpointEngine::new(SolverConfig::default());
    let run = analyze(
        &program,
        &pdg,
        &Checker::null_deref(),
        &mut engine,
        &AnalysisOptions::new(),
    );
    assert!(run.queries > 0);
    assert!(engine.memory().current(Category::PathConditions) > 0);
    assert!(engine.memory().current(Category::Summaries) > 0);
}

#[test]
fn subject_specs_compile_and_find_seeds() {
    // Smoke the three smallest and one large subject at tiny scale.
    for spec in [&SUBJECTS[0], &SUBJECTS[2], &SUBJECTS[12]] {
        let cfg = spec.gen_config(0.0008);
        let mut subject = generate(&cfg);
        let program = compile_ast(
            &subject.surface,
            &mut subject.interner,
            CompileOptions::default(),
        )
        .expect("compile");
        let pdg = Pdg::build(&program);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let run = analyze(
            &program,
            &pdg,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        let s = score(&program, CheckKind::NullDeref, &subject.bugs, &run.reports);
        assert_eq!(s.false_positives, 0, "{}", spec.name);
        assert_eq!(s.missed, 0, "{}", spec.name);
    }
}

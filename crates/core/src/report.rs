//! Human-readable rendering of bug reports and witness paths.
//!
//! A report's dependence path is a sequence of PDG vertices with call and
//! return crossings; this module renders it as a step-by-step trace —
//! what a code reviewer needs to triage the finding — and renders whole
//! report batches grouped by function.

use crate::engine::{BugReport, Feasibility, MultiAnalysisRun};
use fusion_ir::ssa::{DefKind, Program};
use fusion_pdg::paths::Link;
use std::fmt::Write as _;

fn describe_def(program: &Program, func: fusion_ir::FuncId, var: fusion_ir::VarId) -> String {
    let f = program.func(func);
    match &f.def(var).kind {
        DefKind::Param { index } => format!("parameter #{index}"),
        DefKind::Const { is_null: true, .. } => "the null constant".to_owned(),
        DefKind::Const { value, .. } => format!("constant {value}"),
        DefKind::Copy { .. } => "a copy".to_owned(),
        DefKind::Binary { op, .. } => format!("a {op:?} expression"),
        DefKind::Ite { .. } => "a branch merge (ite)".to_owned(),
        DefKind::Call { callee, .. } => {
            format!("a call to `{}`", program.name(program.func(*callee).name))
        }
        DefKind::Branch { .. } => "a branch".to_owned(),
        DefKind::Return { .. } => "the return value".to_owned(),
    }
}

/// Renders one report as a multi-line trace.
pub fn render_report(program: &Program, report: &BugReport) -> String {
    let mut out = String::new();
    let verdict = match report.verdict {
        Feasibility::Feasible => "feasible",
        Feasibility::Unknown => "undecided (budget exhausted)",
        Feasibility::Infeasible => "infeasible", // not reported in practice
    };
    let src_fn = program.name(program.func(report.source.func).name);
    let sink_fn = program.name(program.func(report.sink.func).name);
    let _ = writeln!(
        out,
        "{verdict}: value born in `{src_fn}` reaches a sink in `{sink_fn}` \
         ({} dependence steps)",
        report.path.nodes.len()
    );
    for (i, node) in report.path.nodes.iter().enumerate() {
        let fname = program.name(program.func(node.func).name);
        let what = describe_def(program, node.func, node.var);
        let arrow = if i == 0 {
            "source".to_owned()
        } else {
            match report.path.links[i - 1] {
                Link::Local => "flows to".to_owned(),
                Link::Enter(s) => format!("enters callee via call site {s}"),
                Link::Exit(s) => format!("returns to caller via call site {s}"),
            }
        };
        let _ = writeln!(out, "  {i:>2}. [{arrow}] {fname}:{} — {what}", node.var);
    }
    out
}

/// Renders a batch of reports, grouped by the source's function, with a
/// one-line summary header.
pub fn render_reports(program: &Program, reports: &[BugReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} finding(s)", reports.len());
    let mut sorted: Vec<&BugReport> = reports.iter().collect();
    sorted.sort_by_key(|r| (r.source, r.sink));
    for r in sorted {
        out.push_str(&render_report(program, r));
        out.push('\n');
    }
    out
}

/// Renders a fused multi-checker run: one section per checker (in
/// [`CheckerSet`][crate::checkers::CheckerSet] order) with that
/// checker's finding count, suppression count, and traces, plus a
/// whole-run summary header.
pub fn render_multi(program: &Program, run: &MultiAnalysisRun) -> String {
    let mut out = String::new();
    let total: usize = run.checkers.iter().map(|b| b.reports.len()).sum();
    let _ = writeln!(
        out,
        "{total} finding(s) across {} checker(s) [{}]",
        run.checkers.len(),
        run.engine
    );
    for b in &run.checkers {
        let _ = writeln!(
            out,
            "== {}: {} finding(s), {} suppressed, {} candidate(s), {} query(ies)",
            b.kind,
            b.reports.len(),
            b.suppressed,
            b.candidates,
            b.queries
        );
        let mut sorted: Vec<&BugReport> = b.reports.iter().collect();
        sorted.sort_by_key(|r| (r.source, r.sink));
        for r in sorted {
            out.push_str(&render_report(program, r));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use crate::engine::{analyze, AnalysisOptions};
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_pdg::graph::Pdg;
    use fusion_smt::solver::SolverConfig;

    fn reports_for(src: &str) -> (Program, Vec<BugReport>) {
        let program = compile(src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let run = analyze(
            &program,
            &pdg,
            &Checker::null_deref(),
            &mut engine,
            &AnalysisOptions::new(),
        );
        (program, run.reports)
    }

    #[test]
    fn trace_mentions_every_step() {
        let (program, reports) = reports_for(
            "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f() { let q = null; let r = id(q); deref(r); return 0; }",
        );
        assert_eq!(reports.len(), 1);
        let text = render_report(&program, &reports[0]);
        assert!(text.contains("feasible"), "{text}");
        assert!(text.contains("the null constant"), "{text}");
        assert!(text.contains("enters callee via call site"), "{text}");
        assert!(text.contains("returns to caller via call site"), "{text}");
        assert!(text.contains("a call to `deref`"), "{text}");
        // One line per path vertex plus the header.
        assert_eq!(text.lines().count(), reports[0].path.nodes.len() + 1);
    }

    #[test]
    fn multi_rendering_sections_per_checker() {
        use crate::checkers::CheckerSet;
        use crate::engine::analyze_multi;
        let src = "extern fn deref(p);\n\
             extern fn gets(p);\n\
             extern fn fopen(p);\n\
             fn a() { let q = null; deref(q); return 0; }\n\
             fn b(x) { let t = gets(x); fopen(t); return 0; }";
        let program = compile(src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let set = CheckerSet::all();
        let run = analyze_multi(&program, &pdg, &set, &mut engine, &AnalysisOptions::new());
        let text = render_multi(&program, &run);
        assert!(text.contains("across 3 checker(s)"), "{text}");
        let nd = text.find("== null-deref:").expect("null-deref section");
        let c23 = text.find("== cwe-23:").expect("cwe-23 section");
        let c402 = text.find("== cwe-402:").expect("cwe-402 section");
        assert!(nd < c23 && c23 < c402, "sections in CheckerSet order");
        assert!(text.contains("== null-deref: 1 finding(s)"), "{text}");
        assert!(text.contains("== cwe-23: 1 finding(s)"), "{text}");
        assert!(text.contains("== cwe-402: 0 finding(s)"), "{text}");
        let total: usize = run.checkers.iter().map(|b| b.reports.len()).sum();
        assert!(text.starts_with(&format!("{total} finding(s)")), "{text}");
    }

    #[test]
    fn batch_rendering_sorts_and_counts() {
        let (program, reports) = reports_for(
            "extern fn deref(p);\n\
             fn g() { let q = null; deref(q); return 0; }\n\
             fn h() { let q = null; deref(q); return 0; }",
        );
        assert_eq!(reports.len(), 2);
        let text = render_reports(&program, &reports);
        assert!(text.starts_with("2 finding(s)"));
        let g_pos = text.find("`g`").expect("g present");
        let h_pos = text.find("`h`").expect("h present");
        assert!(g_pos < h_pos, "sorted by source");
    }
}

//! Property test: surface programs survive a print → parse round trip.
//!
//! The printer emits fully parenthesized concrete syntax; printing the
//! reparsed program must reproduce the text byte-for-byte (a fixpoint
//! check that is insensitive to symbol identity).

use fusion_ir::ast::{BinOp, Expr, Function, Program, Stmt, UnOp};
use fusion_ir::interner::Interner;
use fusion_ir::parser::parse;
use fusion_ir::pretty::surface_to_string;
use proptest::prelude::*;

/// Expressions over local slots `l0..l2`, encoded by index so the strategy
/// stays interner-free.
#[derive(Debug, Clone)]
enum EAst {
    Int(i64),
    Null,
    Var(usize),
    Un(u8, Box<EAst>),
    Bin(u8, Box<EAst>, Box<EAst>),
}

fn east() -> impl Strategy<Value = EAst> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(EAst::Int),
        Just(EAst::Null),
        (0usize..3).prop_map(EAst::Var),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (0u8..18, inner.clone(), inner.clone()).prop_map(|(op, a, b)| EAst::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (0u8..3, inner).prop_map(|(op, a)| EAst::Un(op, Box::new(a))),
        ]
    })
}

fn materialize(e: &EAst, locals: &[fusion_ir::Symbol]) -> Expr {
    const BINOPS: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::And,
        BinOp::Or,
    ];
    const UNOPS: [UnOp; 3] = [UnOp::Not, UnOp::Neg, UnOp::BitNot];
    match e {
        EAst::Int(v) => Expr::Int(*v),
        EAst::Null => Expr::Null,
        EAst::Var(i) => Expr::Var(locals[*i]),
        EAst::Un(op, a) => Expr::un(UNOPS[*op as usize % 3], materialize(a, locals)),
        EAst::Bin(op, a, b) => Expr::bin(
            BINOPS[*op as usize % 18],
            materialize(a, locals),
            materialize(b, locals),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(items in prop::collection::vec((0usize..3, east(), any::<bool>()), 0..6)) {
        let mut interner = Interner::new();
        let locals = [interner.intern("l0"), interner.intern("l1"), interner.intern("l2")];
        let fname = interner.intern("f");
        let mut body: Vec<Stmt> =
            locals.iter().map(|&l| Stmt::Let(l, Expr::Int(0))).collect();
        for (slot, e, branch) in &items {
            let expr = materialize(e, &locals);
            if *branch {
                body.push(Stmt::If(
                    expr,
                    vec![Stmt::Assign(locals[*slot], Expr::Int(1))],
                    vec![Stmt::Assign(locals[*slot], Expr::Int(2))],
                ));
            } else {
                body.push(Stmt::Assign(locals[*slot], expr));
            }
        }
        body.push(Stmt::Return(Expr::Var(locals[0])));
        let program = Program {
            functions: vec![Function { name: fname, params: vec![], body, is_extern: false }],
        };
        let text = surface_to_string(&program, &interner);
        let mut interner2 = Interner::new();
        let reparsed = parse(&text, &mut interner2)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let text2 = surface_to_string(&reparsed, &interner2);
        prop_assert_eq!(text, text2);
    }
}

#[test]
fn round_trip_fixture() {
    let src = "extern fn sink(x);\n\
        fn f(a, b) { let r = 0; if (a < b) { r = a * 2; } else { r = ~(b); } \
        while (r < 10) { r = r + 1; } sink(r); return r; }";
    let mut i1 = Interner::new();
    let p1 = parse(src, &mut i1).unwrap();
    let text = surface_to_string(&p1, &i1);
    let mut i2 = Interner::new();
    let p2 = parse(&text, &mut i2).unwrap();
    assert_eq!(surface_to_string(&p2, &i2), text);
}

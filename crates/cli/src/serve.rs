//! The `--serve` loop: a long-lived analysis service speaking
//! line-delimited JSON over stdin/stdout.
//!
//! One request per input line, one response line per request. The
//! [`AnalysisSession`] behind the loop keeps the PDG, compacted view,
//! abstract-interpretation facts, slice closures, cached verdicts, and
//! per-work-item outcomes resident between requests, so a `rescan`
//! after an edit re-analyzes only the work the edit reaches — with
//! findings byte-identical to a cold batch scan of the edited program.
//!
//! ## Requests
//!
//! ```json
//! {"cmd": "scan",   "source": "<program text>"}
//! {"cmd": "rescan", "source": "<program text>", "edited_fns": ["f"]}
//! {"cmd": "query",  "source": "f", "sink": "g"}
//! {"cmd": "save",   "path": "/tmp/session.fsnp"}
//! {"cmd": "load",   "path": "/tmp/session.fsnp"}
//! {"cmd": "stats"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `scan` flushes all resident state and analyzes cold; `rescan` diffs
//! the new text against the resident program's per-function content
//! fingerprints and re-analyzes incrementally (`edited_fns` is an
//! optional client hint, accepted for protocol compatibility — real
//! edits are always self-detected from the fingerprint diff, so a wrong
//! or missing hint cannot cause a stale result). `query` filters the
//! resident findings by source and/or sink function name without
//! re-analyzing. `save` persists the whole resident session — program,
//! PDG, facts, outcomes, verdicts, provenance; never a path condition —
//! to a [`fusion::snapshot`] container; `load` restores it, so a
//! `rescan` of the unchanged program after a process restart replays
//! every recorded outcome without a single solver query. `stats`
//! reports resident-state and last-invalidation counters. `shutdown`
//! (or stdin EOF) ends the loop.
//!
//! ## Responses
//!
//! Every response is one line: `{"ok": true, ...}` on success with an
//! `event` echoing the command, or `{"ok": false, "error": "..."}`. A
//! failed request (parse error, compile error) leaves the resident
//! state untouched.

use crate::json::{self, escape};
use crate::{effective_checkers, fill_report, make_engine, Finding, Options, ScanReport};
use fusion::engine::AnalysisOptions;
use fusion::incremental::AnalysisSession;
use fusion::slice_cache::SliceCache;
use fusion_ir::{compile, CompileOptions};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Collapses the pretty-printed report JSON onto one line (JSON
/// whitespace is insignificant, and every string value is escaped, so
/// dropping the newline + indent of each line is safe).
fn one_line(pretty: &str) -> String {
    pretty.lines().map(str::trim_start).collect()
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"checker\": \"{}\", \"source_function\": \"{}\", \"sink_function\": \"{}\", \
         \"verdict\": \"{}\", \"path_length\": {}}}",
        escape(&f.checker),
        escape(&f.source_function),
        escape(&f.sink_function),
        escape(&f.verdict),
        f.path_length
    )
}

fn respond(out: &mut dyn Write, line: &str) {
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn respond_err(out: &mut dyn Write, msg: &str) {
    respond(
        out,
        &format!("{{\"ok\": false, \"error\": \"{}\"}}", escape(msg)),
    );
}

/// Runs the service loop until `shutdown` or EOF. Returns the process
/// exit code (0: clean shutdown; input errors end the loop cleanly too,
/// since a vanished client is the normal way such a service dies).
pub fn serve_loop(opts: &Options, input: impl BufRead, out: &mut dyn Write) -> i32 {
    let (set, warnings) = effective_checkers(opts);
    let mut analysis_opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
    analysis_opts.absint = opts.absint;
    analysis_opts.compact = opts.compact;
    let mut session = AnalysisSession::new(set, analysis_opts, opts.threads);
    let (engine_choice, timeout, incremental, egraph) =
        (opts.engine, opts.timeout, opts.incremental, opts.egraph);
    let factory = move || make_engine(engine_choice, timeout, incremental, egraph);
    let compile_opts = CompileOptions {
        loop_unroll: opts.unroll,
        recursion_unroll: opts.unroll,
    };
    let mut last_report: Option<ScanReport> = None;
    let (mut saved_bytes, mut loaded_bytes) = (0u64, 0u64);
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match json::Value::parse(line.trim()) {
            Ok(v) => v,
            Err(e) => {
                respond_err(out, &format!("malformed request: {e}"));
                continue;
            }
        };
        let cmd = req.get("cmd").and_then(|v| v.as_str()).unwrap_or("");
        match cmd {
            "scan" | "rescan" => {
                let Some(source) = req.get("source").and_then(|v| v.as_str()) else {
                    respond_err(out, &format!("`{cmd}` needs a string `source` member"));
                    continue;
                };
                let program = match compile(source, compile_opts) {
                    Ok(p) => p,
                    Err(e) => {
                        respond_err(out, &format!("compile error: {e}"));
                        continue;
                    }
                };
                if opts.validate {
                    let errs = fusion_ir::validate::check_program(&program);
                    if !errs.is_empty() {
                        respond_err(
                            out,
                            &format!("IR validation failed with {} diagnostic(s)", errs.len()),
                        );
                        continue;
                    }
                }
                let started = std::time::Instant::now();
                let run = if cmd == "scan" {
                    session.scan(program, &factory)
                } else {
                    session.rescan(program, &factory)
                };
                let pdg = session.pdg().expect("resident after run");
                let mut report = ScanReport {
                    vertices: pdg.stats().vertices,
                    edges: pdg.stats().edges(),
                    warnings: warnings.clone(),
                    ..Default::default()
                };
                fill_report(
                    &mut report,
                    session.program().expect("resident after run"),
                    &run,
                );
                report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                report.cache_bytes = session.cache_bytes();
                report.slice_cache_bytes = session.slice_cache_bytes();
                let inv = session.last_invalidation();
                let mut s = format!(
                    "{{\"ok\": true, \"event\": \"{cmd}\", \"functions_edited\": {}, \
                     \"functions_affected\": {}, \"report\": ",
                    inv.functions_edited, inv.functions_affected
                );
                s.push_str(&one_line(&report.to_json()));
                s.push('}');
                respond(out, &s);
                last_report = Some(report);
            }
            "query" => {
                let Some(report) = &last_report else {
                    respond_err(out, "no resident scan; send `scan` first");
                    continue;
                };
                let want_source = req.get("source").and_then(|v| v.as_str());
                let want_sink = req.get("sink").and_then(|v| v.as_str());
                let hits: Vec<&Finding> = report
                    .findings
                    .iter()
                    .filter(|f| {
                        want_source.is_none_or(|s| f.source_function == s)
                            && want_sink.is_none_or(|s| f.sink_function == s)
                    })
                    .collect();
                let mut s = String::from("{\"ok\": true, \"event\": \"query\", \"findings\": [");
                for (i, f) in hits.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&finding_json(f));
                }
                s.push_str("]}");
                respond(out, &s);
            }
            "save" => {
                let Some(path) = req.get("path").and_then(|v| v.as_str()) else {
                    respond_err(out, "`save` needs a string `path` member");
                    continue;
                };
                match session.save(std::path::Path::new(path)) {
                    Ok(bytes) => {
                        saved_bytes = bytes;
                        respond(
                            out,
                            &format!(
                                "{{\"ok\": true, \"event\": \"save\", \"bytes_written\": {bytes}}}"
                            ),
                        );
                    }
                    Err(e) => respond_err(out, &format!("save failed: {e}")),
                }
            }
            "load" => {
                let Some(path) = req.get("path").and_then(|v| v.as_str()) else {
                    respond_err(out, "`load` needs a string `path` member");
                    continue;
                };
                match session.load(std::path::Path::new(path)) {
                    Ok(bytes) => {
                        loaded_bytes = bytes;
                        // Findings are reassembled by the next (re)scan's
                        // replay; a stale query answer would be worse
                        // than none.
                        last_report = None;
                        respond(
                            out,
                            &format!(
                                "{{\"ok\": true, \"event\": \"load\", \"bytes_read\": {bytes}, \
                                 \"items_resident\": {}, \"verdicts_resident\": {}}}",
                                session.items_resident(),
                                session.verdicts_resident()
                            ),
                        );
                    }
                    Err(e) => respond_err(out, &format!("load failed: {e}")),
                }
            }
            "stats" => {
                let inv = session.last_invalidation();
                let mut s = format!(
                    "{{\"ok\": true, \"event\": \"stats\", \"resident\": {}, ",
                    session.is_resident()
                );
                if let Some(p) = session.program() {
                    let _ = write!(s, "\"functions\": {}, ", p.functions.len());
                }
                if let Some(pdg) = session.pdg() {
                    let _ = write!(
                        s,
                        "\"vertices\": {}, \"edges\": {}, ",
                        pdg.stats().vertices,
                        pdg.stats().edges()
                    );
                }
                let _ = write!(
                    s,
                    "\"verdicts_resident\": {}, \"slices_resident\": {}, \
                     \"items_resident\": {}, \"cache_bytes\": {}, \
                     \"slice_cache_bytes\": {}, \"snapshot_bytes_written\": {}, \
                     \"snapshot_bytes_read\": {}, \"last_invalidation\": {{\
                     \"functions_edited\": {}, \"functions_affected\": {}, \
                     \"facts_invalidated\": {}, \"facts_retained\": {}, \
                     \"slices_invalidated\": {}, \"slices_retained\": {}, \
                     \"verdicts_invalidated\": {}, \"verdicts_retained\": {}, \
                     \"iso_invalidated\": {}, \"candidates_reanalyzed\": {}}}}}",
                    session.verdicts_resident(),
                    session.slices_resident(),
                    session.items_resident(),
                    session.cache_bytes(),
                    session.slice_cache_bytes(),
                    saved_bytes,
                    loaded_bytes,
                    inv.functions_edited,
                    inv.functions_affected,
                    inv.facts_invalidated,
                    inv.facts_retained,
                    inv.slices_invalidated,
                    inv.slices_retained,
                    inv.verdicts_invalidated,
                    inv.verdicts_retained,
                    inv.iso_invalidated,
                    inv.candidates_reanalyzed
                );
                respond(out, &s);
            }
            "shutdown" => {
                respond(out, "{\"ok\": true, \"event\": \"shutdown\"}");
                return 0;
            }
            "" => respond_err(out, "request needs a string `cmd` member"),
            other => respond_err(
                out,
                &format!(
                    "unknown cmd `{other}` (scan, rescan, query, save, load, stats, shutdown)"
                ),
            ),
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const BASE: &str = "extern fn deref(p);\n\
        fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
        fn g(y) { let q = null; let r = 1; if (y > 2) { r = q; } deref(r); return 0; }";

    // `g`'s guard becomes unsatisfiable: the warm rescan must drop g's
    // finding without touching `f`'s work.
    const EDIT: &str = "extern fn deref(p);\n\
        fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
        fn g(y) { let q = null; let r = 1; if (y * 2 == 5) { r = q; } deref(r); return 0; }";

    fn request(cmd: &str, source: Option<&str>) -> String {
        match source {
            Some(src) => format!("{{\"cmd\": \"{cmd}\", \"source\": \"{}\"}}", escape(src)),
            None => format!("{{\"cmd\": \"{cmd}\"}}"),
        }
    }

    fn drive(opts: &Options, requests: &[String]) -> (i32, Vec<json::Value>) {
        let input = requests.join("\n");
        let mut out = Vec::new();
        let code = serve_loop(opts, Cursor::new(input), &mut out);
        let text = String::from_utf8(out).unwrap();
        let responses = text
            .lines()
            .map(|l| json::Value::parse(l).expect("each response line is valid JSON"))
            .collect();
        (code, responses)
    }

    #[test]
    fn scan_rescan_query_stats_shutdown_round_trip() {
        let opts = Options {
            serve: true,
            ..Default::default()
        };
        let (code, resp) = drive(
            &opts,
            &[
                request("scan", Some(BASE)),
                request("rescan", Some(EDIT)),
                "{\"cmd\": \"query\", \"source\": \"f\"}".into(),
                request("stats", None),
                request("shutdown", None),
            ],
        );
        assert_eq!(code, 0);
        assert_eq!(resp.len(), 5);
        for r in &resp {
            assert_eq!(r.get("ok"), Some(&json::Value::Bool(true)));
        }
        // Cold scan: both f and g report under null-deref.
        let cold = resp[0].get("report").unwrap();
        let cold_findings = cold.get("findings").unwrap().as_array().unwrap();
        assert_eq!(
            cold_findings
                .iter()
                .filter(|f| f.get("checker").unwrap().as_str() == Some("null-deref"))
                .count(),
            2
        );
        // Warm rescan after g's edit: g's finding gone, only one edit
        // detected, and only g's component re-analyzed.
        let warm = resp[1].get("report").unwrap();
        let warm_findings = warm.get("findings").unwrap().as_array().unwrap();
        assert_eq!(
            warm_findings
                .iter()
                .filter(|f| f.get("checker").unwrap().as_str() == Some("null-deref"))
                .count(),
            1
        );
        assert_eq!(resp[1].get("functions_edited").unwrap().as_f64(), Some(1.0));
        assert!(warm.get("candidates_reanalyzed").unwrap().as_f64().unwrap() >= 1.0);
        // Query narrows to f's findings only.
        let hits = resp[2].get("findings").unwrap().as_array().unwrap();
        assert!(!hits.is_empty());
        assert!(hits
            .iter()
            .all(|f| f.get("source_function").unwrap().as_str() == Some("f")));
        // Stats reflect a resident program.
        assert_eq!(resp[3].get("resident"), Some(&json::Value::Bool(true)));
        assert!(resp[3].get("functions").unwrap().as_f64().unwrap() >= 3.0);
        assert!(resp[3]
            .get("last_invalidation")
            .unwrap()
            .get("functions_edited")
            .is_some());
        assert_eq!(resp[4].get("event").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn warm_rescan_report_matches_cold_scan_report() {
        // The whole point: after an edit, the warm report's findings are
        // byte-identical to a cold batch scan of the edited program.
        for threads in [1usize, 4] {
            let opts = Options {
                serve: true,
                threads,
                ..Default::default()
            };
            let (_, resp) = drive(
                &opts,
                &[request("scan", Some(BASE)), request("rescan", Some(EDIT))],
            );
            let warm = resp[1].get("report").unwrap();
            let cold = crate::scan_source(
                EDIT,
                &Options {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let warm_findings = warm.get("findings").unwrap().as_array().unwrap();
            assert_eq!(
                warm_findings.len(),
                cold.findings.len(),
                "threads={threads}"
            );
            for (w, c) in warm_findings.iter().zip(&cold.findings) {
                assert_eq!(w.get("checker").unwrap().as_str(), Some(c.checker.as_str()));
                assert_eq!(
                    w.get("source_function").unwrap().as_str(),
                    Some(c.source_function.as_str())
                );
                assert_eq!(
                    w.get("sink_function").unwrap().as_str(),
                    Some(c.sink_function.as_str())
                );
                assert_eq!(w.get("verdict").unwrap().as_str(), Some(c.verdict.as_str()));
                assert_eq!(
                    w.get("path_length").unwrap().as_f64(),
                    Some(c.path_length as f64)
                );
            }
        }
    }

    #[test]
    fn save_load_across_restart_replays_without_queries() {
        let path =
            std::env::temp_dir().join(format!("fusion_serve_save_{}.fsnp", std::process::id()));
        let path_s = path.display().to_string();
        let opts = Options {
            serve: true,
            ..Default::default()
        };
        // First service life: scan, save, shutdown.
        let (_, resp) = drive(
            &opts,
            &[
                request("scan", Some(BASE)),
                format!("{{\"cmd\": \"save\", \"path\": \"{}\"}}", escape(&path_s)),
                request("shutdown", None),
            ],
        );
        assert_eq!(resp[1].get("ok"), Some(&json::Value::Bool(true)));
        assert!(resp[1].get("bytes_written").unwrap().as_f64().unwrap() > 0.0);
        let cold = resp[0].get("report").unwrap();
        let cold_findings = cold.get("findings").unwrap().as_array().unwrap().len();
        // Second service life (a fresh loop stands in for a process
        // restart): load, then rescan the unchanged program — pure
        // replay, zero candidates reanalyzed, zero solver queries.
        let (_, resp2) = drive(
            &opts,
            &[
                format!("{{\"cmd\": \"load\", \"path\": \"{}\"}}", escape(&path_s)),
                request("rescan", Some(BASE)),
                request("stats", None),
            ],
        );
        assert_eq!(resp2[0].get("ok"), Some(&json::Value::Bool(true)));
        assert!(resp2[0].get("bytes_read").unwrap().as_f64().unwrap() > 0.0);
        assert!(resp2[0].get("items_resident").unwrap().as_f64().unwrap() >= 1.0);
        let warm = resp2[1].get("report").unwrap();
        assert_eq!(
            warm.get("findings").unwrap().as_array().unwrap().len(),
            cold_findings
        );
        assert_eq!(
            warm.get("candidates_reanalyzed").unwrap().as_f64(),
            Some(0.0)
        );
        for c in warm.get("checkers").unwrap().as_array().unwrap() {
            assert_eq!(c.get("queries").unwrap().as_f64(), Some(0.0));
        }
        assert_eq!(
            resp2[1].get("functions_edited").unwrap().as_f64(),
            Some(0.0)
        );
        assert!(
            resp2[2]
                .get("snapshot_bytes_read")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        // Error paths: loading a missing file fails; saving with no
        // resident program fails; neither kills the loop.
        let (_, resp3) = drive(
            &opts,
            &[
                format!(
                    "{{\"cmd\": \"load\", \"path\": \"{}.gone\"}}",
                    escape(&path_s)
                ),
                format!("{{\"cmd\": \"save\", \"path\": \"{}\"}}", escape(&path_s)),
                request("save", None),
            ],
        );
        assert_eq!(resp3[0].get("ok"), Some(&json::Value::Bool(false)));
        assert_eq!(resp3[1].get("ok"), Some(&json::Value::Bool(false)));
        assert_eq!(resp3[2].get("ok"), Some(&json::Value::Bool(false)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_leave_resident_state_untouched() {
        let opts = Options {
            serve: true,
            ..Default::default()
        };
        let (code, resp) = drive(
            &opts,
            &[
                "not json at all".into(),
                request("query", None),
                request("scan", Some(BASE)),
                request("scan", Some("fn broken( {")),
                request("nope", None),
                "{\"cmd\": \"query\", \"sink\": \"g\"}".into(),
            ],
        );
        assert_eq!(code, 0, "EOF without shutdown still exits cleanly");
        assert_eq!(resp.len(), 6);
        assert_eq!(resp[0].get("ok"), Some(&json::Value::Bool(false)));
        // Query before any scan is an error.
        assert_eq!(resp[1].get("ok"), Some(&json::Value::Bool(false)));
        assert_eq!(resp[2].get("ok"), Some(&json::Value::Bool(true)));
        // A compile error reports but does not evict the resident scan...
        assert_eq!(resp[3].get("ok"), Some(&json::Value::Bool(false)));
        assert!(resp[3]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("compile error"));
        assert_eq!(resp[4].get("ok"), Some(&json::Value::Bool(false)));
        // ...so the query still answers from the BASE scan (the sink
        // vertex of a null-deref finding lives in the function that
        // calls `deref`, here `g`).
        assert_eq!(resp[5].get("ok"), Some(&json::Value::Bool(true)));
        let hits = resp[5].get("findings").unwrap().as_array().unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("source_function").unwrap().as_str(), Some("g"));
    }
}

//! Control-flow-graph reconstruction for core SSA functions.
//!
//! Lowering records control dependence syntactically (guard chains). This
//! module rebuilds an explicit statement-level CFG from those guards so that
//! the classical Ferrante–Ottenstein–Warren control-dependence computation
//! ([`crate::dominance::control_dependence`]) can be run against it — the
//! two views must agree, which the test suite checks. The CFG is also what
//! a non-sparse analysis (e.g. the Infer-like baseline) iterates over.

use crate::dominance::DiGraph;
use crate::ssa::{Function, VarId};

/// A statement-level CFG for one function.
///
/// Nodes `0..defs.len()` are the function's definitions (node `i` is
/// `VarId(i)`); node `defs.len()` is a virtual entry and node
/// `defs.len() + 1` a virtual exit.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The underlying graph.
    pub graph: DiGraph,
    /// Virtual entry node index.
    pub entry: usize,
    /// Virtual exit node index.
    pub exit: usize,
}

impl Cfg {
    /// The CFG node for a definition.
    pub fn node(&self, v: VarId) -> usize {
        v.index()
    }
}

/// One item of the region tree reconstructed from guard nesting.
#[derive(Debug)]
enum Item {
    Def(usize),
    Region(Box<Region>),
}

/// A maximal run of definitions sharing one guard, with nested regions.
#[derive(Debug, Default)]
struct Region {
    /// The branch vertex guarding this region (`None` for the top level).
    branch: Option<usize>,
    items: Vec<Item>,
}

/// Builds the region tree from the guard chain structure. Definitions are
/// in program order and a region's definitions are contiguous, so a simple
/// stack reconstruction suffices.
fn build_regions(func: &Function) -> Region {
    let mut stack: Vec<Region> = vec![Region::default()];
    for def in &func.defs {
        // Unwind to the region whose branch matches this def's guard.
        loop {
            let cur_branch = stack.last().expect("nonempty").branch;
            let guard = def.guard.map(VarId::index);
            if cur_branch == guard {
                break;
            }
            // If the def's guard is deeper than anything on the stack, the
            // guard chain tells us which branches to push. Otherwise pop.
            let chain: Vec<usize> = func
                .guards(def.var)
                .iter()
                .rev()
                .map(|g| g.index())
                .collect();
            if let Some(pos) = chain.iter().position(|&g| Some(g) == cur_branch) {
                // push the remaining guards deeper than cur_branch
                let next = chain[pos + 1];
                stack.push(Region {
                    branch: Some(next),
                    items: Vec::new(),
                });
            } else if cur_branch.is_none() {
                // push the outermost guard
                let next = chain[0];
                stack.push(Region {
                    branch: Some(next),
                    items: Vec::new(),
                });
            } else {
                let done = stack.pop().expect("nonempty");
                stack
                    .last_mut()
                    .expect("top level never popped")
                    .items
                    .push(Item::Region(Box::new(done)));
            }
        }
        stack
            .last_mut()
            .expect("nonempty")
            .items
            .push(Item::Def(def.var.index()));
    }
    while stack.len() > 1 {
        let done = stack.pop().expect("len > 1");
        stack
            .last_mut()
            .expect("top level")
            .items
            .push(Item::Region(Box::new(done)));
    }
    stack.pop().expect("top level")
}

/// Emits CFG edges for a region. Returns the region's entry node and the
/// set of nodes that fall through to whatever follows the region.
fn emit(region: &Region, g: &mut DiGraph) -> (usize, Vec<usize>) {
    let mut entry = None;
    // Nodes whose control flow falls through to the next item.
    let mut frontier: Vec<usize> = Vec::new();
    for item in &region.items {
        match item {
            Item::Def(n) => {
                for &f in &frontier {
                    g.add_edge(f, *n);
                }
                frontier.clear();
                frontier.push(*n);
                entry.get_or_insert(*n);
            }
            Item::Region(sub) => {
                // The branch vertex itself is a Def item emitted just
                // before; the sub-region's entry hangs off the current
                // frontier (the branch), and the branch also skips past.
                let (sub_entry, sub_exits) = emit(sub, g);
                let branch = sub.branch.expect("nested regions are branched");
                debug_assert!(frontier.contains(&branch));
                g.add_edge(branch, sub_entry);
                // fall-through = branch (not taken) + sub region exits
                let mut new_frontier = frontier.clone();
                new_frontier.extend(sub_exits);
                frontier = new_frontier;
                entry.get_or_insert(branch);
            }
        }
    }
    (entry.expect("regions are nonempty"), frontier)
}

/// Reconstructs the statement-level CFG of `func` from its guard structure.
///
/// # Panics
///
/// Panics if the function is an external declaration with no body.
pub fn build_cfg(func: &Function) -> Cfg {
    assert!(!func.is_extern, "externs have no CFG");
    let n = func.defs.len();
    let entry = n;
    let exit = n + 1;
    let mut g = DiGraph::new(n + 2);
    if n == 0 {
        g.add_edge(entry, exit);
        return Cfg {
            graph: g,
            entry,
            exit,
        };
    }
    let region = build_regions(func);
    let (first, last) = emit(&region, &mut g);
    g.add_edge(entry, first);
    for f in last {
        g.add_edge(f, exit);
    }
    Cfg {
        graph: g,
        entry,
        exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::control_dependence;
    use crate::interner::Interner;
    use crate::lower::{lower, LowerOptions};
    use crate::parser::parse;
    use crate::ssa::Program;

    fn compile(src: &str) -> Program {
        let mut i = Interner::new();
        let s = parse(src, &mut i).expect("parse");
        lower(&s, &mut i, LowerOptions::default()).expect("lower")
    }

    /// The FOW control dependence computed on the reconstructed CFG must
    /// coincide with the guard chains recorded by lowering: the direct
    /// control dependences of a definition are exactly its innermost guard.
    fn check_guards_match_fow(src: &str) {
        let p = compile(src);
        for f in p.functions.iter().filter(|f| !f.is_extern) {
            let cfg = build_cfg(f);
            let cd = control_dependence(&cfg.graph, cfg.exit);
            for def in &f.defs {
                let expected: Vec<usize> = def.guard.iter().map(|g| g.index()).collect();
                assert_eq!(
                    cd[def.var.index()],
                    expected,
                    "control dependence mismatch for {} in {}",
                    def.var,
                    p.name(f.name),
                );
            }
        }
    }

    #[test]
    fn straight_line_has_no_control_dependence() {
        check_guards_match_fow("fn f(x) { let y = x + 1; return y; }");
    }

    #[test]
    fn single_if_matches() {
        check_guards_match_fow("fn f(a) { let r = 0; if (a) { r = 1; } return r; }");
    }

    #[test]
    fn if_else_matches() {
        check_guards_match_fow(
            "fn f(a) { let r = 0; if (a) { r = 1; } else { r = 2; } return r; }",
        );
    }

    #[test]
    fn nested_ifs_match() {
        check_guards_match_fow(
            "fn f(a, b, c) { let r = 0; if (a) { if (b) { r = 1; } if (c) { r = 2; } } return r; }",
        );
    }

    #[test]
    fn early_returns_match() {
        check_guards_match_fow(
            "extern fn sink(x);\n\
             fn f(a, b) { if (a) { return 1; } sink(b); if (b) { return 2; } return 3; }",
        );
    }

    #[test]
    fn unrolled_loops_match() {
        check_guards_match_fow("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
    }

    #[test]
    fn figure7_example_matches() {
        // The paper's Fig. 7 program.
        check_guards_match_fow(
            "fn foo(a, p) {\n\
               let q = 0; let r = 0;\n\
               let b = a > 20;\n\
               if (b) {\n\
                 q = p;\n\
                 let d = a * 2;\n\
                 let e = d > 90;\n\
                 if (e) { r = q; }\n\
               }\n\
               return r;\n\
             }",
        );
    }
}

//! # fusion-rng
//!
//! A tiny, deterministic, dependency-free stand-in for the parts of the
//! `rand` crate this workspace uses. The workspace renames this crate to
//! `rand` (see the root `Cargo.toml`), so downstream code keeps the
//! idiomatic `use rand::{Rng, SeedableRng}` imports while building in an
//! environment with no registry access.
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — statistically
//! solid for workload generation and property tests, seedable, and
//! trivially reproducible. It is **not** cryptographically secure and is
//! not bit-compatible with upstream `rand`.

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `range` (asserts `start < end`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level smoke statistics for the uses here (uniform
    /// index selection, Bernoulli trials) and is fully reproducible from
    /// a `u64` seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Table 3 — time and memory: Fusion vs Pinpoint (null-dereference
//! checking on all sixteen subjects).
//!
//! The claim under test: Fusion uses a fraction of Pinpoint's memory
//! (paper: 3%-20%) and is faster (paper: 2x-48x), with both reporting the
//! same bugs.

use fusion::checkers::Checker;
use fusion::graph_solver::FusionSolver;
use fusion_baselines::PinpointEngine;
use fusion_bench::{banner, build_subject, default_budget, fmt_ratio, run_checker, scale_from_env};
use fusion_workloads::SUBJECTS;

fn main() {
    banner(
        "Table 3: performance compared to Pinpoint (null exceptions)",
        "memory = peak tracked bytes; time = wall clock; same reports required",
    );
    let scale = scale_from_env();
    println!(
        "{:>2} {:>8} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>6} {:>6} | {:>10}",
        "ID",
        "program",
        "fus-mem",
        "pin-mem",
        "mem-x",
        "fus-time",
        "pin-time",
        "time-x",
        "paper",
        "paper",
        "reports"
    );
    println!(
        "{:>2} {:>8} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>6} {:>6} | {:>10}",
        "", "", "(KiB)", "(KiB)", "", "(ms)", "(ms)", "", "mem-x", "time-x", "fus=pin?"
    );
    let checker = Checker::null_deref();
    for spec in &SUBJECTS {
        let subject = build_subject(spec, scale);
        let mut fusion_engine = FusionSolver::new(default_budget());
        let fusion_run = run_checker(&subject, &checker, &mut fusion_engine);
        let mut pinpoint_engine = PinpointEngine::new(default_budget());
        let pinpoint_run = run_checker(&subject, &checker, &mut pinpoint_engine);
        let same = fusion_run.reports.len() == pinpoint_run.reports.len();
        println!(
            "{:>2} {:>8} | {:>10} {:>10} {:>8} | {:>10.1} {:>10.1} {:>8} | {:>6} {:>6} | {:>4} {}",
            spec.id,
            spec.name,
            fusion_run.peak_memory / 1024,
            pinpoint_run.peak_memory / 1024,
            fmt_ratio(
                pinpoint_run.peak_memory as f64,
                fusion_run.peak_memory as f64
            ),
            fusion_run.total_time().as_secs_f64() * 1e3,
            pinpoint_run.total_time().as_secs_f64() * 1e3,
            fmt_ratio(
                pinpoint_run.total_time().as_secs_f64(),
                fusion_run.total_time().as_secs_f64()
            ),
            fmt_ratio(spec.pinpoint_mem_gb, spec.fusion_mem_gb),
            fmt_ratio(spec.pinpoint_time_s, spec.fusion_time_s),
            fusion_run.reports.len(),
            if same { "= yes" } else { "= NO!" },
        );
    }
    println!("\nexpected shape: pin-mem/fus-mem and pin-time/fus-time > 1 throughout,");
    println!("growing with subject size; reports identical (same precision).");
}

//! Umbrella crate for the Fusion reproduction: re-exports every workspace
//! crate so examples and integration tests can use a single dependency.
pub use fusion as core;
pub use fusion_baselines as baselines;
pub use fusion_ir as ir;
pub use fusion_pdg as pdg;
pub use fusion_smt as smt;
pub use fusion_workloads as workloads;

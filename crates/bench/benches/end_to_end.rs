//! Criterion end-to-end benchmark: whole-program null checking with each
//! engine on a mid-sized subject (the headline Table 3 comparison as a
//! statistically sampled measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use fusion::checkers::Checker;
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion_baselines::PinpointEngine;
use fusion_bench::{build_subject, default_budget, run_checker};
use fusion_workloads::SUBJECTS;

fn bench_engines(c: &mut Criterion) {
    let subject = build_subject(&SUBJECTS[13], 0.002); // v8 shape
    let checker = Checker::null_deref();
    let mut group = c.benchmark_group("end_to_end/v8");
    group.sample_size(10);
    group.bench_function("fusion", |b| {
        b.iter(|| {
            let mut engine = FusionSolver::new(default_budget());
            run_checker(&subject, &checker, &mut engine)
        })
    });
    group.bench_function("unopt_graph", |b| {
        b.iter(|| {
            let mut engine = UnoptimizedGraphSolver::new(default_budget());
            run_checker(&subject, &checker, &mut engine)
        })
    });
    group.bench_function("pinpoint", |b| {
        b.iter(|| {
            let mut engine = PinpointEngine::new(default_budget());
            run_checker(&subject, &checker, &mut engine)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

//! A small string interner for identifiers.
//!
//! Every name that appears in a program (function names, variable names) is
//! interned into a [`Symbol`], a cheap `Copy` handle that supports O(1)
//! equality and hashing. The interner lives inside the program that owns the
//! names, so symbols from different programs must not be mixed.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; resolve them back with [`Interner::resolve`].
///
/// # Examples
///
/// ```
/// use fusion_ir::interner::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("foo");
/// let b = interner.intern("foo");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "foo");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns strings and resolves [`Symbol`]s back to `&str`.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if `s` was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `s` if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to the interned string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        let c = i.intern("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["foo", "bar", "baz", ""];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *n);
        }
    }

    #[test]
    fn lookup_without_interning() {
        let mut i = Interner::new();
        assert!(i.lookup("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
    }
}

//! Graph-side support for the pre-discovery PDG-compaction pass.
//!
//! The compaction itself (frontier reachability pruning, summary-chain
//! collapse, isomorphic-fragment dedup) is checker-aware and lives in
//! `fusion::compact`; this module holds the checker-agnostic graph
//! machinery it is built on:
//!
//! * [`VertexIndexer`] — a dense whole-program numbering of PDG vertices,
//!   so per-checker reachability can use flat bit sets instead of hash
//!   sets of [`Vertex`];
//! * [`DenseBitSet`] — the flat bit set itself;
//! * [`SummaryChain`] — one collapsed single-entry/single-exit
//!   `Enter…Exit` summary chain, carrying the **original** vertex
//!   sequence so discovery can replay it verbatim: reports and content
//!   hashing always see the uncompacted path (§3.2.2 discipline — the
//!   chain caches dependence structure only, never a path condition).

use crate::graph::Vertex;
use crate::paths::Link;
use fusion_ir::ssa::{CallSiteId, Program};

/// A dense numbering of every PDG vertex (definition) in a program:
/// vertices of function `f` occupy the contiguous index range
/// `[offset(f), offset(f) + f.defs.len())`, in definition order.
#[derive(Debug, Clone)]
pub struct VertexIndexer {
    offsets: Vec<usize>,
    total: usize,
}

impl VertexIndexer {
    /// Builds the numbering from the program's per-function sizes.
    pub fn new(program: &Program) -> VertexIndexer {
        let mut offsets = Vec::with_capacity(program.functions.len());
        let mut total = 0usize;
        for f in &program.functions {
            offsets.push(total);
            total += f.defs.len();
        }
        VertexIndexer { offsets, total }
    }

    /// Total number of vertices (the program size).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the program has no vertices at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The dense index of a vertex.
    ///
    /// # Panics
    ///
    /// Panics when the vertex's function is out of range for the indexed
    /// program.
    pub fn index(&self, v: Vertex) -> usize {
        self.offsets[v.func.index()] + v.var.index()
    }
}

/// A flat bit set over dense vertex indices — the reachability sets of
/// the compaction pass (one forward and one backward per checker).
#[derive(Debug, Clone)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> DenseBitSet {
        DenseBitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size this set was created with.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1u64 << b) == 0;
        self.words[w] |= 1u64 << b;
        fresh
    }

    /// Membership test. Out-of-universe indices are simply absent.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// One collapsed summary chain: a single-entry/single-exit corridor
/// through a callee — `Enter(site) → param → … → Exit(site) → dst` —
/// along which a checker's fact has exactly one way to move and nothing
/// to report. Discovery replays `body` as one composite edge instead of
/// stepping vertex-by-vertex, but the replayed path is the **original,
/// uncompacted vertex sequence**: reports, `path_set_key` hashing and
/// CFL state keys are byte-identical to an uncollapsed traversal.
#[derive(Debug, Clone)]
pub struct SummaryChain {
    /// The call site whose `Enter`/`Exit` parenthesis pair the chain
    /// spans.
    pub site: CallSiteId,
    /// The replayed `(link, vertex)` steps, in order: `(Enter(site),
    /// callee param)`, the intermediate `Local` steps inside the callee,
    /// and finally `(Exit(site), caller receiver)`.
    pub body: Vec<(Link, Vertex)>,
}

impl SummaryChain {
    /// Number of replayed steps (always ≥ 3: enter, at least the return
    /// definition, exit).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// A chain's body is never empty by construction.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::ssa::{FuncId, VarId};
    use fusion_ir::{compile, CompileOptions};

    #[test]
    fn indexer_is_dense_and_per_function_contiguous() {
        let p = compile(
            "fn a(x) { return x; } fn b(y) { let z = y + 1; return z; }",
            CompileOptions::default(),
        )
        .expect("compile");
        let ix = VertexIndexer::new(&p);
        assert_eq!(ix.len(), p.size());
        assert!(!ix.is_empty());
        let mut seen = vec![false; ix.len()];
        for f in &p.functions {
            for d in &f.defs {
                let i = ix.index(Vertex::new(f.id, d.var));
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "numbering must be onto");
    }

    #[test]
    fn bitset_insert_contains_count() {
        let mut s = DenseBitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "reinsert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of universe is absent");
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn chain_len_reflects_body() {
        let c = SummaryChain {
            site: fusion_ir::ssa::CallSiteId(0),
            body: vec![
                (
                    Link::Enter(fusion_ir::ssa::CallSiteId(0)),
                    Vertex::new(FuncId(0), VarId(0)),
                ),
                (Link::Local, Vertex::new(FuncId(0), VarId(1))),
                (
                    Link::Exit(fusion_ir::ssa::CallSiteId(0)),
                    Vertex::new(FuncId(1), VarId(2)),
                ),
            ],
        };
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
